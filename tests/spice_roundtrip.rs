//! SPICE deck round-trip: exporting a circuit and re-importing it must
//! preserve its electrical behaviour, not just its structure — and, for
//! the checkpoint memo cache, its exact device values and canonical
//! content hash.

use clocksense::core::{ClockPair, SensorBuilder, Technology};
use clocksense::netlist::{
    canonical_form, canonical_hash, from_spice, to_spice, Circuit, Device, MosParams, MosPolarity,
    NodeId, SourceWave, GROUND,
};
use clocksense::spice::{transient, SimOptions};
use proptest::prelude::*;

#[test]
fn sensor_testbench_survives_the_deck() {
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech)
        .load_capacitance(160e-15)
        .build()
        .expect("valid sensor");
    let clocks = ClockPair::single_shot(tech.vdd, 0.2e-9).with_skew(0.3e-9);
    let bench = sensor.testbench(&clocks).expect("bench builds");

    let deck = to_spice(&bench, "sensor testbench");
    assert!(deck.contains("m_a"));
    assert!(deck.contains(".model"));
    let back = from_spice(&deck).expect("deck parses");
    assert_eq!(back.device_count(), bench.device_count());

    let opts = SimOptions {
        tstep: 2e-12,
        ..SimOptions::default()
    };
    let stop = clocks.sim_stop_time();
    let a = transient(&bench, stop, &opts).expect("original simulates");
    let b = transient(&back, stop, &opts).expect("round-trip simulates");
    for node in ["y1", "y2", "mid_a", "top_b"] {
        let wa = a.waveform_named(node).expect("node exists");
        let wb = b.waveform_named(node).expect("node exists");
        let diff = wa.max_abs_difference(&wb);
        assert!(
            diff < 2e-3,
            "node {node} diverges by {diff} V after the round trip"
        );
    }
}

/// One randomly drawn device, with terminals as indices into a small
/// node pool (index 0 is ground).
#[derive(Debug, Clone)]
enum DeviceSpec {
    R(usize, usize, f64),
    C(usize, usize, f64),
    V(usize, usize, SourceWave),
    I(usize, usize, SourceWave),
    M(bool, usize, usize, usize, MosParams),
}

const NODE_POOL: usize = 5;

/// `mantissa * 10^exp` over the given decimal-exponent span: arbitrary
/// doubles (no round decimals), so the deck's `eng()` formatting has to
/// round-trip genuinely awkward values.
fn value(lo_exp: i32, hi_exp: i32) -> impl Strategy<Value = f64> {
    (1.0f64..10.0, lo_exp..=hi_exp).prop_map(|(m, e)| m * 10f64.powi(e))
}

/// All wave kinds behind one strategy: a discriminant selects among
/// DC, pulse (one-shot or periodic) and PWL built from the same drawn
/// fields (the vendored proptest has no `prop_oneof!`).
fn wave_strategy() -> impl Strategy<Value = SourceWave> {
    (
        0..3usize,
        (-10.0f64..10.0, -5.0f64..5.0, 0.0f64..1e-9),
        (value(-12, -10), value(-12, -10), 0.0f64..2e-9),
        // Periodic flag + slack: a finite period must clear
        // rise + width + fall; flag 0 is the one-shot wave.
        (0..2usize, value(-10, -9)),
        (
            0.0f64..1e-9,
            prop::collection::vec((value(-12, -10), -5.0f64..5.0), 1..6),
        ),
    )
        .prop_map(
            |(kind, (v1, v2, delay), (rise, fall, width), (periodic, slack), (t0, steps))| {
                match kind {
                    0 => SourceWave::Dc(v1),
                    1 => SourceWave::Pulse {
                        v1,
                        v2,
                        delay,
                        rise,
                        fall,
                        width,
                        period: if periodic == 1 {
                            rise + width + fall + slack
                        } else {
                            f64::INFINITY
                        },
                    },
                    _ => {
                        let mut t = t0;
                        SourceWave::Pwl(
                            steps
                                .into_iter()
                                .map(|(dt, v)| {
                                    let point = (t, v);
                                    t += dt;
                                    point
                                })
                                .collect(),
                        )
                    }
                }
            },
        )
}

fn mos_params_strategy() -> impl Strategy<Value = MosParams> {
    (
        (-2.0f64..2.0, value(-6, -4), 0.0f64..0.1, value(-6, -5)),
        (
            value(-7, -6),
            value(-16, -14),
            value(-16, -14),
            value(-16, -14),
        ),
    )
        .prop_map(|((vth0, kp, lambda, w), (l, cgs, cgd, cdb))| MosParams {
            vth0,
            kp,
            lambda,
            w,
            l,
            cgs,
            cgd,
            cdb,
        })
}

fn device_strategy() -> impl Strategy<Value = DeviceSpec> {
    // Terminals are (node, nonzero offset) so no device shorts a node
    // to itself; a discriminant selects the device kind.
    (
        0..5usize,
        (0..NODE_POOL, 1..NODE_POOL, 0..NODE_POOL),
        (value(-3, 6), value(-15, -9)),
        wave_strategy(),
        (any::<bool>(), mos_params_strategy()),
    )
        .prop_map(
            |(kind, (a, off, g), (ohms, farads), wave, (pmos, params))| {
                let b = (a + off) % NODE_POOL;
                match kind {
                    0 => DeviceSpec::R(a, b, ohms),
                    1 => DeviceSpec::C(a, b, farads),
                    2 => DeviceSpec::V(a, b, wave),
                    3 => DeviceSpec::I(a, b, wave),
                    _ => DeviceSpec::M(pmos, a, g, b, params),
                }
            },
        )
}

fn build_circuit(specs: &[DeviceSpec]) -> Circuit {
    let mut ckt = Circuit::new();
    let nodes: Vec<NodeId> = (0..NODE_POOL)
        .map(|i| {
            if i == 0 {
                GROUND
            } else {
                ckt.node(&format!("n{i}"))
            }
        })
        .collect();
    for (i, spec) in specs.iter().enumerate() {
        match spec {
            DeviceSpec::R(a, b, v) => ckt.add_resistor(&format!("r{i}"), nodes[*a], nodes[*b], *v),
            DeviceSpec::C(a, b, v) => ckt.add_capacitor(&format!("c{i}"), nodes[*a], nodes[*b], *v),
            DeviceSpec::V(a, b, w) => {
                ckt.add_vsource(&format!("v{i}"), nodes[*a], nodes[*b], w.clone())
            }
            DeviceSpec::I(a, b, w) => {
                ckt.add_isource(&format!("i{i}"), nodes[*a], nodes[*b], w.clone())
            }
            DeviceSpec::M(pmos, d, g, s, params) => {
                let polarity = if *pmos {
                    MosPolarity::Pmos
                } else {
                    MosPolarity::Nmos
                };
                ckt.add_mosfet(
                    &format!("m{i}"),
                    polarity,
                    nodes[*d],
                    nodes[*g],
                    nodes[*s],
                    *params,
                )
            }
        }
        .expect("generated device is well-formed");
    }
    ckt
}

fn assert_rel_eq(a: f64, b: f64, what: &str) -> Result<(), TestCaseError> {
    prop_assert!(
        (a - b).abs() <= 1e-12 * a.abs().max(b.abs()),
        "{what}: {a} vs {b} beyond 1e-12 relative"
    );
    Ok(())
}

fn assert_waves_close(a: &SourceWave, b: &SourceWave, name: &str) -> Result<(), TestCaseError> {
    match (a, b) {
        (SourceWave::Dc(x), SourceWave::Dc(y)) => assert_rel_eq(*x, *y, name)?,
        (
            SourceWave::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            },
            SourceWave::Pulse {
                v1: w1,
                v2: w2,
                delay: wd,
                rise: wr,
                fall: wf,
                width: ww,
                period: wp,
            },
        ) => {
            for (x, y) in [
                (v1, w1),
                (v2, w2),
                (delay, wd),
                (rise, wr),
                (fall, wf),
                (width, ww),
            ] {
                assert_rel_eq(*x, *y, name)?;
            }
            prop_assert_eq!(
                period.is_finite(),
                wp.is_finite(),
                "{} lost its one-shot/periodic nature",
                name
            );
            if period.is_finite() {
                assert_rel_eq(*period, *wp, name)?;
            }
        }
        (SourceWave::Pwl(xs), SourceWave::Pwl(ys)) => {
            prop_assert_eq!(xs.len(), ys.len(), "{} changed point count", name);
            for ((tx, vx), (ty, vy)) in xs.iter().zip(ys) {
                assert_rel_eq(*tx, *ty, name)?;
                assert_rel_eq(*vx, *vy, name)?;
            }
        }
        _ => prop_assert!(false, "{name} changed wave kind across the round trip"),
    }
    Ok(())
}

/// Every device in `a` must exist in `b` with values equal to within
/// 1e-12 relative (the canonical-form assertions tighten this to
/// bit-exact; this check localises a failure to a device and field).
fn assert_devices_close(a: &Circuit, b: &Circuit) -> Result<(), TestCaseError> {
    for (_, entry) in a.devices() {
        let id = b.find_device(&entry.name);
        prop_assert!(id.is_some(), "device {} lost in the round trip", entry.name);
        let back = &b.device(id.unwrap()).unwrap().device;
        match (&entry.device, back) {
            (Device::Resistor(x), Device::Resistor(y)) => {
                assert_rel_eq(x.ohms, y.ohms, &entry.name)?;
            }
            (Device::Capacitor(x), Device::Capacitor(y)) => {
                assert_rel_eq(x.farads, y.farads, &entry.name)?;
            }
            (Device::VoltageSource(x), Device::VoltageSource(y)) => {
                assert_waves_close(&x.wave, &y.wave, &entry.name)?;
            }
            (Device::CurrentSource(x), Device::CurrentSource(y)) => {
                assert_waves_close(&x.wave, &y.wave, &entry.name)?;
            }
            (Device::Mosfet(x), Device::Mosfet(y)) => {
                prop_assert_eq!(x.polarity, y.polarity, "{} flipped polarity", &entry.name);
                for (px, py) in [
                    (x.params.vth0, y.params.vth0),
                    (x.params.kp, y.params.kp),
                    (x.params.lambda, y.params.lambda),
                    (x.params.w, y.params.w),
                    (x.params.l, y.params.l),
                    (x.params.cgs, y.params.cgs),
                    (x.params.cgd, y.params.cgd),
                    (x.params.cdb, y.params.cdb),
                ] {
                    assert_rel_eq(px, py, &entry.name)?;
                }
            }
            _ => prop_assert!(false, "{} changed device kind", &entry.name),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// `to_spice` → `from_spice` preserves every device value to within
    /// 1e-12 relative *and* the canonical content hash exactly, for
    /// arbitrary circuits over all device and wave kinds. The hash
    /// equality is what makes the checkpoint memo cache sound: a
    /// journal written against the original circuit replays against the
    /// re-imported one.
    #[test]
    fn random_circuits_round_trip_exactly(specs in prop::collection::vec(device_strategy(), 1..10)) {
        let ckt = build_circuit(&specs);
        let deck = to_spice(&ckt, "proptest round trip");
        let back = from_spice(&deck).expect("exported deck parses");
        prop_assert_eq!(ckt.device_count(), back.device_count());
        assert_devices_close(&ckt, &back)?;
        prop_assert_eq!(canonical_form(&ckt), canonical_form(&back));
        prop_assert_eq!(canonical_hash(&ckt), canonical_hash(&back));
    }
}

#[test]
fn deck_is_human_readable() {
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech).build().expect("valid sensor");
    let deck = to_spice(sensor.circuit(), "bare sensor");
    // Spot-check the dialect: title, element cards, model cards, .end.
    let lines: Vec<&str> = deck.lines().collect();
    assert!(lines[0].starts_with("* "));
    assert!(lines.last().unwrap().eq_ignore_ascii_case(".end"));
    assert_eq!(
        lines.iter().filter(|l| l.starts_with("m_")).count(),
        10,
        "ten labelled transistors"
    );
    assert_eq!(lines.iter().filter(|l| l.starts_with(".model")).count(), 10);
}
