//! Adaptive (LTE-controlled) timestep vs the fixed golden grid, at the
//! level the paper's conclusions live: skew verdicts, the τ_min
//! sensitivity bound and fault-campaign detection outcomes must not
//! depend on how the transient grid was chosen — while the adaptive grid
//! must be at least 3x coarser on the sensor workload.

use clocksense::core::{find_tau_min, ClockPair, SensorBuilder, Technology};
use clocksense::faults::{run_campaign, CampaignConfig, Fault, StuckLevel};
use clocksense::spice::{SimOptions, TimestepControl};

fn fixed_opts() -> SimOptions {
    SimOptions {
        tstep: 2e-12,
        ..SimOptions::default()
    }
}

fn adaptive_opts() -> SimOptions {
    SimOptions {
        timestep: TimestepControl::Adaptive {
            tstep_max: 100e-12,
            lte_tol: 1.0,
        },
        ..fixed_opts()
    }
}

#[test]
fn sensor_verdicts_and_vmin_agree_across_grids() {
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech)
        .load_capacitance(160e-15)
        .build()
        .expect("sensor builds");

    for &skew in &[0.0, 0.15e-9, 0.4e-9, -0.4e-9] {
        let clocks = ClockPair::single_shot(tech.vdd, 0.2e-9).with_skew(skew);
        let fixed = sensor.simulate(&clocks, &fixed_opts()).expect("fixed run");
        let adaptive = sensor
            .simulate(&clocks, &adaptive_opts())
            .expect("adaptive run");

        assert_eq!(
            fixed.verdict, adaptive.verdict,
            "verdict changed with the grid at skew {skew:e}"
        );
        assert!(
            (fixed.vmin_y1 - adaptive.vmin_y1).abs() < 0.1,
            "vmin_y1 drift at skew {skew:e}: {} vs {}",
            fixed.vmin_y1,
            adaptive.vmin_y1
        );
        assert!(
            (fixed.vmin_y2 - adaptive.vmin_y2).abs() < 0.1,
            "vmin_y2 drift at skew {skew:e}: {} vs {}",
            fixed.vmin_y2,
            adaptive.vmin_y2
        );
        assert!(
            fixed.y1.len() >= 3 * adaptive.y1.len(),
            "adaptive must be >= 3x coarser at skew {skew:e}: {} vs {}",
            fixed.y1.len(),
            adaptive.y1.len()
        );
    }
}

#[test]
fn tau_min_sensitivity_agrees_within_tolerance() {
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech)
        .load_capacitance(160e-15)
        .build()
        .expect("sensor builds");
    let clocks = ClockPair::single_shot(tech.vdd, 0.2e-9);

    let tol = 2e-12;
    let fixed = find_tau_min(&sensor, &clocks, 1e-9, tol, &fixed_opts())
        .expect("fixed tau search")
        .expect("sensor is sensitive to some skew");
    let adaptive = find_tau_min(&sensor, &clocks, 1e-9, tol, &adaptive_opts())
        .expect("adaptive tau search")
        .expect("sensor is sensitive to some skew");

    // Both searches bisect to `tol`; the grids may disagree by a few
    // more picoseconds of verdict-boundary placement.
    assert!(
        (fixed - adaptive).abs() <= 5e-12,
        "tau_min moved with the grid: fixed {fixed:e} vs adaptive {adaptive:e}"
    );
}

#[test]
fn campaign_detection_outcomes_agree_across_grids() {
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech)
        .load_capacitance(160e-15)
        .build()
        .expect("sensor builds");
    let faults = vec![
        Fault::NodeStuckAt {
            node: "y1".into(),
            level: StuckLevel::Zero,
        },
        Fault::NodeStuckAt {
            node: "y2".into(),
            level: StuckLevel::One,
        },
        Fault::Bridge {
            a: "y1".into(),
            b: "y2".into(),
            ohms: 100.0,
        },
        Fault::StuckOpen {
            device: "m_a".into(),
        },
    ];

    let run = |sim: SimOptions| {
        let mut cfg = CampaignConfig::new(ClockPair::single_shot(tech.vdd, 0.2e-9));
        cfg.sim = sim;
        cfg.threads = 1;
        run_campaign(&sensor, &faults, &cfg).expect("campaign runs")
    };
    let fixed = run(fixed_opts());
    let adaptive = run(adaptive_opts());

    for (f, a) in fixed.records().iter().zip(adaptive.records()) {
        assert_eq!(f.fault, a.fault);
        assert_eq!(
            f.outcome, a.outcome,
            "detection outcome changed with the grid for {:?}",
            f.fault
        );
        assert_eq!(
            f.masks_skew, a.masks_skew,
            "skew-masking changed with the grid for {:?}",
            f.fault
        );
    }
}
