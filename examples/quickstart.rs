//! Quickstart: build the paper's skew-sensing circuit, stimulate it with a
//! clean and a skewed clock pair, and read the verdicts.
//!
//! Run with: `cargo run --release --example quickstart`

use clocksense::core::{find_tau_min, ClockPair, SensorBuilder, Technology};
use clocksense::spice::SimOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 1.2 um CMOS process of the paper, and a sensor loaded with the
    // Fig. 4 mid-range 160 fF per output.
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech).load_capacitance(160e-15).build()?;

    // Two clock phases branching from the same generator: 5 V swing,
    // 0.2 ns edges.
    let clocks = ClockPair::single_shot(tech.vdd, 0.2e-9);
    let opts = SimOptions::default();

    // Case 1: no skew. The outputs dip together to the NMOS threshold and
    // recover: no error.
    let clean = sensor.simulate(&clocks, &opts)?;
    println!(
        "no skew     -> verdict: {:<12} (V_min y1 = {:.2} V, y2 = {:.2} V)",
        clean.verdict.to_string(),
        clean.vmin_y1,
        clean.vmin_y2
    );

    // Case 2: phi2 late by 300 ps. Block A falls fully and blocks block
    // B's pull-down: the (0,1) error indication.
    let skewed = sensor.simulate(&clocks.with_skew(0.3e-9), &opts)?;
    println!(
        "300 ps skew -> verdict: {:<12} (V_min y1 = {:.2} V, y2 = {:.2} V)",
        skewed.verdict.to_string(),
        skewed.vmin_y1,
        skewed.vmin_y2
    );

    // The sensitivity: smallest detectable skew for this load.
    let tau_min =
        find_tau_min(&sensor, &clocks, 0.6e-9, 2e-12, &opts)?.expect("detectable within 0.6 ns");
    println!("sensitivity tau_min = {:.1} ps", tau_min * 1e12);
    Ok(())
}
