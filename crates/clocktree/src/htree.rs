//! Symmetric H-tree clock topology.

use crate::geometry::Point;
use crate::rctree::{RcNodeId, RcTree};

/// Per-unit-length wire parasitics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireParasitics {
    /// Resistance per metre (Ω/m).
    pub r_per_m: f64,
    /// Capacitance per metre (F/m).
    pub c_per_m: f64,
    /// Number of RC sections a wire segment is split into (≥ 1); more
    /// sections approximate the distributed line better.
    pub sections: usize,
}

impl WireParasitics {
    /// Typical mid-1990s metal-2: 70 mΩ/sq at 1 µm width ≈ 70 kΩ/m,
    /// 0.2 fF/µm ≈ 200 pF/m, three sections per segment.
    pub fn metal2() -> Self {
        WireParasitics {
            r_per_m: 70e3,
            c_per_m: 200e-12,
            sections: 3,
        }
    }
}

/// A symmetric H-tree over a square die: `levels` recursive H figures,
/// serving `4^levels` sink regions.
///
/// The H-tree is the canonical balanced clock topology: every root-to-sink
/// path has identical length and identical RC profile, so the fault-free
/// skew is exactly zero — which makes it the natural test vehicle for the
/// paper's skew sensors (Fig. 6 places them across symmetric branches).
///
/// # Examples
///
/// ```
/// use clocksense_clocktree::{HTree, WireParasitics};
///
/// let h = HTree::new(2, 2e-3, WireParasitics::metal2());
/// assert_eq!(h.sink_nodes().len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct HTree {
    tree: RcTree,
    sinks: Vec<RcNodeId>,
    levels: usize,
}

impl HTree {
    /// Builds an H-tree with the given recursion depth over a
    /// `die_size × die_size` square (metres).
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`, `die_size <= 0` or
    /// `parasitics.sections == 0`.
    pub fn new(levels: usize, die_size: f64, parasitics: WireParasitics) -> Self {
        assert!(levels > 0, "h-tree needs at least one level");
        assert!(die_size > 0.0, "die size must be positive");
        assert!(parasitics.sections > 0, "wire needs at least one section");
        let mut tree = RcTree::new(1e-15);
        let centre = Point::new(die_size / 2.0, die_size / 2.0);
        tree.set_position(RcNodeId(0), centre).expect("root exists");
        let mut sinks = Vec::new();
        let mut builder = HTreeBuilder {
            tree: &mut tree,
            sinks: &mut sinks,
            parasitics,
        };
        builder.recurse(RcNodeId(0), centre, die_size / 2.0, levels);
        HTree {
            tree,
            sinks,
            levels,
        }
    }

    /// The underlying RC tree (root is the clock entry point).
    pub fn tree(&self) -> &RcTree {
        &self.tree
    }

    /// Converts into an owned RC tree with the given capacitance added at
    /// every sink (the flip-flop clock loads).
    pub fn to_rc_tree(&self, sink_cap: f64) -> RcTree {
        let mut tree = self.tree.clone();
        for &s in &self.sinks {
            tree.add_capacitance(s, sink_cap.max(0.0))
                .expect("sink exists");
        }
        tree
    }

    /// The sink node ids, in construction order.
    pub fn sink_nodes(&self) -> &[RcNodeId] {
        &self.sinks
    }

    /// Recursion depth.
    pub fn levels(&self) -> usize {
        self.levels
    }
}

struct HTreeBuilder<'a> {
    tree: &'a mut RcTree,
    sinks: &'a mut Vec<RcNodeId>,
    parasitics: WireParasitics,
}

impl HTreeBuilder<'_> {
    /// Adds a wire of the given length from `from` to the point `to`,
    /// split into RC sections; returns the far-end node.
    fn wire(&mut self, from: RcNodeId, from_pos: Point, to: Point) -> RcNodeId {
        let length = from_pos.manhattan(to);
        let sections = self.parasitics.sections;
        let r_sec = self.parasitics.r_per_m * length / sections as f64;
        let c_sec = self.parasitics.c_per_m * length / sections as f64;
        let mut cur = from;
        for k in 1..=sections {
            cur = self
                .tree
                .add_node(cur, r_sec.max(1e-6), c_sec)
                .expect("parent exists");
            let pos = from_pos.lerp(to, k as f64 / sections as f64);
            self.tree.set_position(cur, pos).expect("node exists");
        }
        cur
    }

    /// One H figure centred at `centre` with half-span `half`, recursing
    /// into the four quadrant centres.
    fn recurse(&mut self, from: RcNodeId, centre: Point, half: f64, level: usize) {
        let arm = half / 2.0;
        // Horizontal bar of the H: centre to left and right arm midpoints.
        let left_mid = Point::new(centre.x - arm, centre.y);
        let right_mid = Point::new(centre.x + arm, centre.y);
        let left = self.wire(from, centre, left_mid);
        let right = self.wire(from, centre, right_mid);
        // Vertical strokes: each arm midpoint up and down.
        for (mid_node, mid_pos) in [(left, left_mid), (right, right_mid)] {
            for dy in [-arm, arm] {
                let end_pos = Point::new(mid_pos.x, mid_pos.y + dy);
                let end = self.wire(mid_node, mid_pos, end_pos);
                if level == 1 {
                    self.sinks.push(end);
                } else {
                    self.recurse(end, end_pos, half / 2.0, level - 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_count_is_4_to_the_levels() {
        for levels in 1..=3 {
            let h = HTree::new(levels, 1e-3, WireParasitics::metal2());
            assert_eq!(h.sink_nodes().len(), 4usize.pow(levels as u32));
        }
    }

    #[test]
    fn fault_free_htree_has_zero_skew() {
        let h = HTree::new(3, 4e-3, WireParasitics::metal2());
        let tree = h.to_rc_tree(40e-15);
        let delays = tree.elmore_delays(150.0);
        let sink_delays: Vec<f64> = h.sink_nodes().iter().map(|s| delays[s.index()]).collect();
        let d0 = sink_delays[0];
        assert!(d0 > 0.0);
        for d in &sink_delays {
            assert!((d - d0).abs() < 1e-16, "unbalanced: {d} vs {d0}");
        }
    }

    #[test]
    fn sink_positions_are_distinct_and_on_die() {
        let die = 2e-3;
        let h = HTree::new(2, die, WireParasitics::metal2());
        let tree = h.tree();
        let mut seen = Vec::new();
        for &s in h.sink_nodes() {
            let p = tree.position(s).expect("sinks are placed");
            assert!(p.x >= 0.0 && p.x <= die && p.y >= 0.0 && p.y <= die);
            assert!(
                !seen.iter().any(|&q: &Point| q.manhattan(p) < 1e-9),
                "duplicate sink position {p}"
            );
            seen.push(p);
        }
    }

    #[test]
    fn deeper_trees_are_slower() {
        let p = WireParasitics::metal2();
        let d2 = {
            let h = HTree::new(2, 4e-3, p);
            let t = h.to_rc_tree(40e-15);
            t.elmore_delays(150.0)[h.sink_nodes()[0].index()]
        };
        let d3 = {
            let h = HTree::new(3, 4e-3, p);
            let t = h.to_rc_tree(40e-15);
            t.elmore_delays(150.0)[h.sink_nodes()[0].index()]
        };
        // More levels at the same die size add wire and load.
        assert!(d3 > d2);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        HTree::new(0, 1e-3, WireParasitics::metal2());
    }
}
