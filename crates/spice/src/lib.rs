//! Modified-nodal-analysis (MNA) transient simulator with Level-1 MOSFETs.
//!
//! This crate is the electrical-level engine the paper's evaluation runs on:
//! a from-scratch analog simulator covering exactly the device set the
//! skew-sensing circuit needs — resistors, capacitors, independent sources
//! and Shichman–Hodges (SPICE Level-1) MOSFETs.
//!
//! * [`dc_operating_point`] — Newton–Raphson DC solution with gmin and
//!   source stepping fallbacks.
//! * [`transient`] — trapezoidal integration (backward-Euler start) with
//!   Newton iteration per step, source-breakpoint alignment and step
//!   halving on non-convergence.
//! * [`iddq`] — quiescent supply-current measurement, the detection
//!   criterion the paper invokes for pull-up stuck-on and resistive
//!   bridging faults.
//!
//! # Examples
//!
//! Simulate an RC low-pass step response and check the time constant:
//!
//! ```
//! use clocksense_netlist::{Circuit, SourceWave, GROUND};
//! use clocksense_spice::{transient, SimOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut ckt = Circuit::new();
//! let inp = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.add_vsource("vin", inp, GROUND, SourceWave::step(0.0, 1.0, 0.0, 1e-12))?;
//! ckt.add_resistor("r", inp, out, 1_000.0)?;
//! ckt.add_capacitor("c", out, GROUND, 1e-12)?; // tau = 1 ns
//! let result = transient(&ckt, 5e-9, &SimOptions::default())?;
//! let v_out = result.waveform(out);
//! let v_at_tau = v_out.value_at(1e-9);
//! assert!((v_at_tau - 0.632).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

mod batch;
mod dc;
mod engine;
mod error;
mod matrix;
mod metrics;
mod mos_eval;
mod options;
mod sparse;
mod tran;

pub use batch::{transient_batch, BatchSim, LANE_WIDTH};
pub use clocksense_exec::Deadline;
pub use dc::{
    dc_operating_point, dc_operating_point_cached, dc_sweep, iddq, iddq_cached, DcSolution,
};
pub use error::{RescueStage, SimDiagnostics, SpiceError};
pub use matrix::{DenseMatrix, LuScratch};
pub use mos_eval::{channel_current, channel_current_lanes, MosOperatingPoint, MosRegion};
pub use options::{IntegrationMethod, SimOptions, SolverKind, TimestepControl};
pub use sparse::{SparseMatrix, Symbolic, SymbolicCache};
pub use tran::{transient, transient_cached, TranResult};
