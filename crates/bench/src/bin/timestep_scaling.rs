//! Fixed vs adaptive (LTE-controlled) timestep on the paper's workloads.
//!
//! Runs the same transients twice — once on the fixed `tstep` grid that
//! regenerates every archived figure, once with
//! `TimestepControl::Adaptive` — on two workloads: the skew-sensing
//! circuit under a deliberate skew, and an H-tree RC clock net. For each
//! it checks that the adaptive waveforms agree with the fixed reference
//! (same verdict, V_min within tolerance, bounded pointwise voltage
//! difference) and reports step counts and wall clock. With `--report`
//! the snapshot archives the step/time counters under the `timestep.`
//! scope plus the stepper's own `tran.*` telemetry — the committed run
//! lives in `results/timestep_scaling.json`.

use std::time::Instant;

use clocksense_bench::{htree_netlist, print_header, Table};
use clocksense_core::{ClockPair, SensorBuilder, Technology};
use clocksense_spice::{transient, SimOptions, TimestepControl};

/// Fixed reference options: the grid every archived figure was made on.
fn fixed_opts() -> SimOptions {
    SimOptions {
        tstep: 2e-12,
        ..SimOptions::default()
    }
}

/// The adaptive counterpart: same base `tstep` (used right after DC and
/// breakpoints), free to grow to 100 ps over quiescent stretches.
fn adaptive_opts() -> SimOptions {
    SimOptions {
        timestep: TimestepControl::Adaptive {
            tstep_max: 100e-12,
            lte_tol: 1.0,
        },
        ..fixed_opts()
    }
}

/// Largest pointwise |a - b| over `n` equidistant probe times.
fn max_dv(a: &clocksense_wave::Waveform, b: &clocksense_wave::Waveform, t_stop: f64) -> f64 {
    (0..=200)
        .map(|k| {
            let t = t_stop * k as f64 / 200.0;
            (a.value_at(t) - b.value_at(t)).abs()
        })
        .fold(0.0f64, f64::max)
}

fn main() {
    let bench = clocksense_bench::report::start_scoped("timestep_scaling", "timestep");
    let scope = &bench.tele;
    print_header("Transient step counts: fixed vs adaptive (LTE-controlled) grid");
    let mut table = Table::new(&[
        "workload",
        "fixed steps",
        "adaptive steps",
        "ratio",
        "fixed [ms]",
        "adaptive [ms]",
        "max |dV| [V]",
    ]);

    // Workload 1: the sensing circuit under a skew it must flag. The
    // verdict, not just the waveform, has to survive the grid change.
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech)
        .load_capacitance(160e-15)
        .build()
        .expect("sensor builds");
    let clocks = ClockPair::single_shot(tech.vdd, 0.2e-9).with_skew(0.4e-9);

    let start = Instant::now();
    let fixed = sensor
        .simulate(&clocks, &fixed_opts())
        .expect("fixed sensor run");
    let fixed_wall = start.elapsed();
    let start = Instant::now();
    let adaptive = sensor
        .simulate(&clocks, &adaptive_opts())
        .expect("adaptive sensor run");
    let adaptive_wall = start.elapsed();

    assert_eq!(
        fixed.verdict, adaptive.verdict,
        "adaptive grid changed the skew verdict"
    );
    assert!(
        (fixed.vmin_y1 - adaptive.vmin_y1).abs() < 0.1
            && (fixed.vmin_y2 - adaptive.vmin_y2).abs() < 0.1,
        "V_min drifted: fixed ({:.3}, {:.3}) vs adaptive ({:.3}, {:.3})",
        fixed.vmin_y1,
        fixed.vmin_y2,
        adaptive.vmin_y1,
        adaptive.vmin_y2
    );
    let t_stop = clocks.sim_stop_time();
    let dv = max_dv(&fixed.y1, &adaptive.y1, t_stop).max(max_dv(&fixed.y2, &adaptive.y2, t_stop));
    assert!(dv < 0.25, "sensor outputs diverged by {dv} V");
    let (f_steps, a_steps) = (fixed.y1.len(), adaptive.y1.len());
    assert!(
        f_steps >= 3 * a_steps,
        "adaptive must take >= 3x fewer steps on the sensor: {f_steps} vs {a_steps}"
    );
    scope.counter("sensor_fixed_steps").add(f_steps as u64);
    scope.counter("sensor_adaptive_steps").add(a_steps as u64);
    scope
        .counter("sensor_fixed_us")
        .add(fixed_wall.as_micros() as u64);
    scope
        .counter("sensor_adaptive_us")
        .add(adaptive_wall.as_micros() as u64);
    table.row(&[
        "sensor (0.4ns skew)".to_string(),
        format!("{f_steps}"),
        format!("{a_steps}"),
        format!("{:.1}x", f_steps as f64 / a_steps as f64),
        format!("{:.1}", fixed_wall.as_secs_f64() * 1e3),
        format!("{:.1}", adaptive_wall.as_secs_f64() * 1e3),
        format!("{dv:.2e}"),
    ]);

    // Workload 2: H-tree clock nets, where most of the window is a
    // quiescent tail the adaptive grid strides across.
    let mut sizes: Vec<usize> = vec![64, 256];
    let mut t_stop = 1.0e-9;
    if clocksense_bench::fast_mode() {
        sizes.truncate(1);
        t_stop = 0.5e-9;
    }
    for &n in &sizes {
        let (ckt, leaf) = htree_netlist(n);
        let start = Instant::now();
        let fixed = transient(&ckt, t_stop, &fixed_opts()).expect("fixed htree run");
        let fixed_wall = start.elapsed();
        let start = Instant::now();
        let adaptive = transient(&ckt, t_stop, &adaptive_opts()).expect("adaptive htree run");
        let adaptive_wall = start.elapsed();

        let dv = max_dv(&fixed.waveform(leaf), &adaptive.waveform(leaf), t_stop);
        assert!(dv < 0.05, "htree-{n} leaf diverged by {dv} V");
        let (f_steps, a_steps) = (fixed.times().len(), adaptive.times().len());
        assert!(
            f_steps >= 3 * a_steps,
            "adaptive must take >= 3x fewer steps on htree-{n}: {f_steps} vs {a_steps}"
        );
        scope
            .counter(&format!("htree{n}_fixed_steps"))
            .add(f_steps as u64);
        scope
            .counter(&format!("htree{n}_adaptive_steps"))
            .add(a_steps as u64);
        scope
            .counter(&format!("htree{n}_fixed_us"))
            .add(fixed_wall.as_micros() as u64);
        scope
            .counter(&format!("htree{n}_adaptive_us"))
            .add(adaptive_wall.as_micros() as u64);
        table.row(&[
            format!("htree-{n}"),
            format!("{f_steps}"),
            format!("{a_steps}"),
            format!("{:.1}x", f_steps as f64 / a_steps as f64),
            format!("{:.1}", fixed_wall.as_secs_f64() * 1e3),
            format!("{:.1}", adaptive_wall.as_secs_f64() * 1e3),
            format!("{dv:.2e}"),
        ]);
    }

    println!("{}", table.render());
    println!(
        "both grids resolve every clock edge (breakpoints are clamped, not\n\
         stepped over); the adaptive controller spends its budget there and\n\
         strides across the quiescent stretches the fixed grid oversamples"
    );
    bench.finish();
}
