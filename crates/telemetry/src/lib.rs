//! Runtime telemetry for the clocksense workspace: cheap atomic
//! counters, monotonic timers and fixed-bucket histograms behind a
//! [`Scope`]/[`Registry`] API, with a machine-readable JSON run report.
//!
//! The crate is `std`-only (no serde, no external dependencies) because
//! the build environment has no crates.io access and the hot paths it
//! instruments — the Newton loop of the SPICE engine, fault-campaign
//! workers, Monte-Carlo sampling — cannot afford heavyweight
//! observability machinery.
//!
//! # Design
//!
//! * Every metric handle ([`Counter`], [`Timer`], [`Histogram`]) is a
//!   cheap clonable reference into its [`Registry`]. Handles obtained
//!   from [`Registry::disabled`] are permanent no-ops: recording through
//!   them compiles down to a branch on a `None`, so fully
//!   uninstrumented builds pay nothing and solver outputs are
//!   bit-identical with telemetry on or off (telemetry never feeds back
//!   into numerics).
//! * A *paused* registry ([`Registry::paused`], which is how the
//!   process-wide [`global`] registry starts) allocates real metrics but
//!   records only after [`Registry::enable`] — one relaxed atomic load
//!   guards each write. Bench binaries enable it when `--report` is
//!   requested.
//! * [`Registry::snapshot`] freezes all metrics into a [`Report`],
//!   which serialises to deterministic, sorted-key JSON via
//!   [`Report::to_json`] — diff-able run artifacts for perf tracking.
//!
//! # Examples
//!
//! ```
//! use clocksense_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let scope = registry.scope("spice");
//! let iterations = scope.counter("newton_iterations");
//! let solve_time = scope.timer("solve_wall");
//!
//! {
//!     let _guard = solve_time.start(); // records on drop
//!     iterations.add(17);
//! }
//!
//! let report = registry.snapshot();
//! assert_eq!(report.counter("spice.newton_iterations"), Some(17));
//! assert!(report.to_json().contains("\"spice.newton_iterations\": 17"));
//! ```
//!
//! Zero-cost-when-disabled: a disabled registry hands out no-op handles
//! and its reports are empty.
//!
//! ```
//! use clocksense_telemetry::Registry;
//!
//! let registry = Registry::disabled();
//! let c = registry.counter("never");
//! c.add(1_000_000);
//! assert_eq!(c.get(), 0);
//! assert_eq!(registry.snapshot().counter("never"), None);
//! ```

#![deny(missing_docs)]

mod metrics;
mod registry;
mod report;

pub use metrics::{Counter, Histogram, Stopwatch, Timer};
pub use registry::{Registry, Scope};
pub use report::{HistogramSnapshot, Report, TimerSnapshot};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry.
///
/// It starts *paused*: instrumented code paths allocate real metrics
/// through it, but nothing is recorded until [`Registry::enable`] is
/// called (the bench binaries do so when `--report` is passed). This
/// keeps the disabled-by-default overhead to one relaxed atomic load
/// per record call.
///
/// # Examples
///
/// ```
/// let registry = clocksense_telemetry::global();
/// let c = registry.counter("example.hits");
/// c.incr();
/// // The global registry starts paused: nothing was recorded.
/// assert_eq!(c.get(), 0);
/// ```
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::paused)
}
