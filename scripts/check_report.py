#!/usr/bin/env python3
"""Validate a clocksense telemetry run report (the --report JSON).

Structural gate for the CI bench-smoke job: every experiment binary must
emit a well-formed report, whatever its numbers are. Checks:

  * top-level shape: schema / meta / counters / timers / histograms;
  * schema string is the known version;
  * every counter is a non-negative integer, every timer/histogram
    statistic a finite number (no NaN / Infinity smuggled through);
  * histogram invariants: one bucket more than bounds, count equals the
    bucket sum;
  * optionally (--bench) the meta block names the expected binary and
    (--expect-counter, repeatable) specific counters were recorded;
  * optionally (--tran-adaptive) the adaptive-timestep scope is coherent:
    all six tran.* counters present, at least one step accepted, and the
    rejected/accepted ratio below a sanity bound (a controller rejecting
    more steps than it accepts is thrashing, not adapting);
  * optionally (--rescue) the retry/quarantine accounting is coherent:
    the campaign.retry_* counters are present, the quarantine never
    exceeds the scheduled retries, and every scheduled retry is either
    recovered or quarantined;
  * optionally (--expect-zero-rescue) the run was clean: no rescue.* or
    campaign.* retry counter recorded a nonzero value (both scopes
    materialise lazily, so a clean run normally has none at all);
  * optionally (--batch) the batched-kernel accounting is coherent: the
    kernel actually ran (batch.batches_run >= 1), it kept variants
    active (batch.occupancy_active >= 1), and the batched/scalar
    campaign comparison covered at least one fault with zero verdict
    mismatches;
  * optionally (--expect-zero-batch) the run never touched the batched
    kernel: no batch.* counter recorded a nonzero value (the scope
    materialises lazily, so a scalar run normally has none at all);
  * optionally (--checkpoint) the checkpoint journal accounting is
    coherent: all five checkpoint.* counters are present, every item is
    either a memo hit or a miss (hits + misses == items_total), every
    hit came from a replayed journal record (records_replayed == hits),
    every miss wrote exactly one final record (records_written ==
    misses), and the run actually exercised the memo cache (hits >= 1);
  * optionally (--expect-zero-checkpoint) the run never touched a
    checkpoint journal: no checkpoint.* counter recorded a nonzero
    value (the scope materialises lazily, so a journal-free run
    normally has none at all).

Exits 0 on success, 1 with a message naming the first violation.
"""

import argparse
import json
import math
import sys

SCHEMA = "clocksense-telemetry/v1"

TRAN_COUNTERS = (
    "tran.steps_accepted",
    "tran.steps_rejected",
    "tran.lte_step_shrinks",
    "tran.lte_step_growths",
    "tran.breakpoint_clamps",
    "tran.predictor_newton_iters_saved",
)


def fail(msg: str) -> None:
    sys.exit(f"check_report: FAIL: {msg}")


def check_finite(value, where: str) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(f"{where}: expected a number, got {value!r}")
    if isinstance(value, float) and not math.isfinite(value):
        fail(f"{where}: non-finite value {value!r}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="path to the --report JSON file")
    parser.add_argument("--bench", help="expected meta.bench name")
    parser.add_argument(
        "--expect-counter",
        action="append",
        default=[],
        metavar="NAME",
        help="counter that must be present (repeatable)",
    )
    parser.add_argument(
        "--tran-adaptive",
        action="store_true",
        help="require a coherent adaptive-timestep (tran.*) counter scope",
    )
    parser.add_argument(
        "--rescue",
        action="store_true",
        help="require coherent campaign retry/quarantine accounting",
    )
    parser.add_argument(
        "--expect-zero-rescue",
        action="store_true",
        help="fail if any rescue.* or campaign.* retry counter is nonzero",
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help="require coherent batched-kernel occupancy and verdict agreement",
    )
    parser.add_argument(
        "--expect-zero-batch",
        action="store_true",
        help="fail if any batch.* counter is nonzero",
    )
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        help="require coherent checkpoint journal/memo-cache accounting",
    )
    parser.add_argument(
        "--expect-zero-checkpoint",
        action="store_true",
        help="fail if any checkpoint.* counter is nonzero",
    )
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {args.report}: {e}")

    for key in ("schema", "meta", "counters", "timers", "histograms"):
        if key not in report:
            fail(f"missing top-level key {key!r}")
    if report["schema"] != SCHEMA:
        fail(f"schema {report['schema']!r}, expected {SCHEMA!r}")
    if args.bench is not None and report["meta"].get("bench") != args.bench:
        fail(f"meta.bench {report['meta'].get('bench')!r}, expected {args.bench!r}")

    for name, value in report["counters"].items():
        where = f"counters[{name!r}]"
        if not isinstance(value, int) or isinstance(value, bool):
            fail(f"{where}: expected an integer, got {value!r}")
        if value < 0:
            fail(f"{where}: negative count {value}")

    for name, value in report["timers"].items():
        stats = value if isinstance(value, dict) else {"value": value}
        for stat, v in stats.items():
            check_finite(v, f"timers[{name!r}].{stat}")

    for name, hist in report["histograms"].items():
        where = f"histograms[{name!r}]"
        for key in ("count", "sum", "bounds", "buckets"):
            if key not in hist:
                fail(f"{where}: missing {key!r}")
        for stat in ("count", "sum", "min", "max"):
            if stat in hist:
                check_finite(hist[stat], f"{where}.{stat}")
        bounds, buckets = hist["bounds"], hist["buckets"]
        if len(buckets) != len(bounds) + 1:
            fail(
                f"{where}: {len(buckets)} buckets for {len(bounds)} bounds "
                "(expected bounds + 1)"
            )
        for i, b in enumerate(buckets):
            check_finite(b, f"{where}.buckets[{i}]")
        if sum(buckets) != hist["count"]:
            fail(f"{where}: bucket sum {sum(buckets)} != count {hist['count']}")

    for name in args.expect_counter:
        if name not in report["counters"]:
            fail(f"expected counter {name!r} missing")

    if args.tran_adaptive:
        counters = report["counters"]
        for name in TRAN_COUNTERS:
            if name not in counters:
                fail(f"adaptive-timestep counter {name!r} missing")
        accepted = counters["tran.steps_accepted"]
        rejected = counters["tran.steps_rejected"]
        if accepted < 1:
            fail("tran.steps_accepted must be >= 1 for an adaptive run")
        # Non-negativity is already checked above; here we bound the
        # controller's thrash: more than 2 rejections per accepted step
        # means the step sizing is not converging.
        if rejected > 2 * accepted:
            fail(
                f"tran.steps_rejected ({rejected}) exceeds twice "
                f"tran.steps_accepted ({accepted}): controller is thrashing"
            )

    if args.rescue:
        counters = report["counters"]
        for name in (
            "campaign.retry_scheduled",
            "campaign.retry_recovered",
            "campaign.quarantined",
        ):
            if name not in counters:
                fail(f"rescue-gate counter {name!r} missing")
        scheduled = counters["campaign.retry_scheduled"]
        recovered = counters["campaign.retry_recovered"]
        quarantined = counters["campaign.quarantined"]
        if quarantined > scheduled:
            fail(
                f"campaign.quarantined ({quarantined}) exceeds "
                f"campaign.retry_scheduled ({scheduled})"
            )
        if recovered + quarantined != scheduled:
            fail(
                f"retry accounting leaks: recovered ({recovered}) + "
                f"quarantined ({quarantined}) != scheduled ({scheduled})"
            )

    if args.batch:
        counters = report["counters"]
        for name in (
            "batch.batches_run",
            "batch.occupancy_active",
            "batch_scaling.verdicts_total",
            "batch_scaling.verdict_mismatches",
        ):
            if name not in counters:
                fail(f"batch-gate counter {name!r} missing")
        if counters["batch.batches_run"] < 1:
            fail("batch.batches_run must be >= 1: the batched kernel never ran")
        if counters["batch.occupancy_active"] < 1:
            fail(
                "batch.occupancy_active must be >= 1: every variant fell "
                "out of every batch"
            )
        if counters["batch_scaling.verdicts_total"] < 1:
            fail("batch_scaling.verdicts_total must be >= 1: no faults compared")
        mismatches = counters["batch_scaling.verdict_mismatches"]
        if mismatches != 0:
            fail(
                f"batch_scaling.verdict_mismatches = {mismatches}: batched "
                "and scalar campaigns disagree"
            )

    if args.checkpoint:
        counters = report["counters"]
        for name in (
            "checkpoint.items_total",
            "checkpoint.memo_hits",
            "checkpoint.memo_misses",
            "checkpoint.records_replayed",
            "checkpoint.records_written",
        ):
            if name not in counters:
                fail(f"checkpoint-gate counter {name!r} missing")
        total = counters["checkpoint.items_total"]
        hits = counters["checkpoint.memo_hits"]
        misses = counters["checkpoint.memo_misses"]
        replayed = counters["checkpoint.records_replayed"]
        written = counters["checkpoint.records_written"]
        if hits + misses != total:
            fail(
                f"checkpoint accounting leaks: memo_hits ({hits}) + "
                f"memo_misses ({misses}) != items_total ({total})"
            )
        if replayed != hits:
            fail(
                f"checkpoint.records_replayed ({replayed}) != "
                f"checkpoint.memo_hits ({hits}): a hit that replayed "
                "nothing, or a replay that hit nothing"
            )
        if written != misses:
            fail(
                f"checkpoint.records_written ({written}) != "
                f"checkpoint.memo_misses ({misses}): every miss must "
                "journal exactly one final record"
            )
        if hits < 1:
            fail("checkpoint.memo_hits must be >= 1: the memo cache never hit")

    if args.expect_zero_rescue:
        for name, value in report["counters"].items():
            if (name.startswith("rescue.") or name.startswith("campaign.")) and value != 0:
                fail(
                    f"clean run recorded {name} = {value}: the rescue/retry "
                    "machinery must stay idle on healthy circuits"
                )

    if args.expect_zero_batch:
        for name, value in report["counters"].items():
            if name.startswith("batch.") and value != 0:
                fail(
                    f"scalar run recorded {name} = {value}: the batched "
                    "kernel must stay idle when SimOptions::batch is 0"
                )

    if args.expect_zero_checkpoint:
        for name, value in report["counters"].items():
            if name.startswith("checkpoint.") and value != 0:
                fail(
                    f"journal-free run recorded {name} = {value}: the "
                    "checkpoint layer must stay idle without a journal path"
                )

    print(
        f"check_report: OK: {args.report} "
        f"({len(report['counters'])} counters, "
        f"{len(report['histograms'])} histograms)"
    )


if __name__ == "__main__":
    main()
