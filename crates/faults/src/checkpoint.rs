//! Campaign checkpoint journal and canonical-hash memo cache.
//!
//! A campaign configured with [`CampaignConfig::checkpoint`] writes one
//! journal record per *completed* fault item, keyed by a canonical
//! content hash of exactly what was simulated: the injected test-bench
//! netlist ([`clocksense_netlist::canonical_form`]) plus a fingerprint
//! of every option that can influence the verdict ([`SimOptions`],
//! clocks, detection criteria, retry policy). On the next run the
//! journal is replayed first: items whose hash already carries a record
//! are skipped entirely (a *memo hit*), and only the remainder is handed
//! to the executor — so an interrupted campaign resumes where it died,
//! an unchanged campaign is pure cache hits, and editing one device's
//! value re-simulates only the variants whose hashes moved.
//!
//! # File format and atomicity
//!
//! The journal is a line-oriented text file:
//!
//! ```text
//! clocksense-journal/v1
//! <hash:016x>\t<tag>\t<field>\t<field>...
//! ```
//!
//! Fields are tab-separated with `\\`/`\t`/`\n`/`\r` escaped, so failure
//! details (panic messages, solver diagnostics) survive verbatim. Every
//! flush rewrites the whole journal to a sibling `*.tmp` file, syncs it,
//! and atomically renames it over the real path: a `SIGKILL` at any
//! instant leaves either the previous journal or the new one, never a
//! torn file. The loader is additionally lenient — a missing file or a
//! foreign header is an empty journal (every item simply misses), a
//! torn final line (no terminator) is dropped, and a malformed
//! *interior* line — bit-flipped media, an editor accident — is skipped
//! and tallied under `checkpoint.records_corrupt` instead of aborting
//! the replay: corruption costs exactly the records it touched, which
//! simply re-simulate as memo misses.
//!
//! A record is journalled only once it is *final* — after the retry pass
//! when the campaign retries, immediately otherwise — so a resume can
//! never replay a pre-retry verdict that the uninterrupted run would
//! have overwritten.
//!
//! [`CampaignConfig::checkpoint`]: crate::CampaignConfig::checkpoint
//! [`SimOptions`]: clocksense_spice::SimOptions

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use clocksense_netlist::f64_bits;
use clocksense_spice::{IntegrationMethod, SimOptions, SolverKind, TimestepControl};

use crate::campaign::{CampaignConfig, FailureInfo, FailureKind, FaultRecord};
use crate::detect::DetectionOutcome;
use crate::model::Fault;

/// Version header leading every journal file. A journal with any other
/// first line is treated as empty, so format changes degrade to memo
/// misses instead of misreads.
pub const JOURNAL_VERSION: &str = "clocksense-journal/v1";

/// Record tag used for campaign fault items.
pub const TAG_FAULT: &str = "fault";

/// Record tag used for Monte-Carlo scatter samples.
pub const TAG_MC: &str = "mc";

fn escape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    for c in field.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Parses the 16-hex-digit bit pattern written by
/// [`f64_bits`](clocksense_netlist::f64_bits) back into an `f64`.
pub fn parse_f64_bits(field: &str) -> Option<f64> {
    u64::from_str_radix(field, 16).ok().map(f64::from_bits)
}

/// One parsed journal line.
#[derive(Debug, Clone)]
struct Entry {
    hash: u64,
    tag: String,
    fields: Vec<String>,
}

/// Parses one newline-stripped journal line; `None` marks a malformed
/// (corrupt) line the loader skips and counts.
fn parse_entry(line: &str) -> Option<Entry> {
    let mut parts = line.split('\t');
    let (hash, tag) = (parts.next()?, parts.next()?);
    // The hash field is always exactly 16 hex digits; anything else —
    // including a flipped digit that shortened or lengthened it — is
    // corruption, not a record.
    if hash.len() != 16 || tag.is_empty() {
        return None;
    }
    let hash = u64::from_str_radix(hash, 16).ok()?;
    Some(Entry {
        hash,
        tag: unescape(tag),
        fields: parts.map(unescape).collect(),
    })
}

/// Append-only, atomically-flushed campaign journal.
///
/// Lookups return the *latest* record for a hash; appends rewrite the
/// whole file through a temp-file+rename, which keeps every flush
/// atomic at the cost of O(journal) bytes per record — the right trade
/// for campaign-sized universes where one fault's simulation dwarfs one
/// file rewrite.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    entries: Vec<Entry>,
    latest: HashMap<u64, usize>,
}

impl Journal {
    /// Opens (or conceptually creates) the journal at `path`.
    ///
    /// A missing file or a file with a foreign header loads as an empty
    /// journal; a torn (unterminated) tail costs only the records
    /// behind it; a malformed interior line is skipped and tallied
    /// under the lazily-scoped `checkpoint.records_corrupt` counter, so
    /// bit-flipped media degrades to memo misses rather than aborting
    /// the replay.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Journal> {
        let path = path.into();
        let mut journal = Journal {
            path,
            entries: Vec::new(),
            latest: HashMap::new(),
        };
        let mut text = match fs::read_to_string(&journal.path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(journal),
            Err(e) => return Err(e),
        };
        // Chaos hook: an armed plan may truncate or bit-flip the loaded
        // text here, simulating media corruption between runs.
        clocksense_chaos::journal_load_hook(&mut text);
        // Only newline-terminated lines count: a writer that crashed
        // mid-append (without the atomic rename) leaves a torn final
        // line, recognisable precisely by its missing terminator.
        let mut lines: Vec<&str> = text.split('\n').collect();
        lines.pop();
        let mut lines = lines.into_iter();
        if lines.next() != Some(JOURNAL_VERSION) {
            return Ok(journal);
        }
        let mut corrupt = 0u64;
        for line in lines {
            let Some(entry) = parse_entry(line) else {
                corrupt += 1;
                continue;
            };
            journal.latest.insert(entry.hash, journal.entries.len());
            journal.entries.push(entry);
        }
        if corrupt > 0 {
            clocksense_telemetry::global()
                .scope("checkpoint")
                .counter("records_corrupt")
                .add(corrupt);
        }
        Ok(journal)
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of loaded + appended records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The latest record stored under `hash`, if it carries `tag`.
    pub fn lookup(&self, hash: u64, tag: &str) -> Option<&[String]> {
        let &i = self.latest.get(&hash)?;
        let entry = &self.entries[i];
        (entry.tag == tag).then_some(entry.fields.as_slice())
    }

    /// Appends one record and atomically flushes the journal to disk.
    ///
    /// Bumps the lazily-scoped `checkpoint.records_written` counter, so
    /// runs that never touch a journal keep their telemetry snapshots
    /// byte-identical.
    pub fn append(&mut self, hash: u64, tag: &str, fields: &[String]) -> io::Result<()> {
        let entry = Entry {
            hash,
            tag: tag.to_string(),
            fields: fields.to_vec(),
        };
        self.latest.insert(hash, self.entries.len());
        self.entries.push(entry);
        self.flush()?;
        clocksense_telemetry::global()
            .scope("checkpoint")
            .counter("records_written")
            .incr();
        Ok(())
    }

    fn flush(&self) -> io::Result<()> {
        let mut text = String::with_capacity(64 * (self.entries.len() + 1));
        text.push_str(JOURNAL_VERSION);
        text.push('\n');
        for entry in &self.entries {
            let _ = write!(text, "{:016x}\t{}", entry.hash, escape(&entry.tag));
            for field in &entry.fields {
                text.push('\t');
                text.push_str(&escape(field));
            }
            text.push('\n');
        }
        let file_name = self
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "journal".to_string());
        let tmp = self.path.with_file_name(format!("{file_name}.tmp"));
        // Chaos hook: an armed plan may kill this flush — the temp file
        // receives only a prefix of the bytes and the rename never
        // happens, exactly the on-disk state a SIGKILL here leaves. The
        // error aborts the campaign the way the signal would have.
        if let Some(keep) = clocksense_chaos::flush_kill_hook(text.len()) {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&text.as_bytes()[..keep.min(text.len())])?;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "chaos: journal flush killed before rename",
            ));
        }
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)
    }
}

fn duration_field(d: Option<std::time::Duration>) -> String {
    match d {
        Some(d) => format!("{}", d.as_nanos()),
        None => "-".to_string(),
    }
}

/// Fingerprint of every [`SimOptions`] field that can influence a
/// simulation result. The `deadline` token is deliberately excluded: it
/// is per-item wall-clock state, covered by the campaign fingerprint's
/// `item_deadline` budget instead.
pub fn sim_options_fingerprint(sim: &SimOptions) -> String {
    let method = match sim.method {
        IntegrationMethod::Trapezoidal => "trap",
        IntegrationMethod::BackwardEuler => "be",
    };
    let timestep = match sim.timestep {
        TimestepControl::Fixed => "fixed".to_string(),
        TimestepControl::Adaptive { tstep_max, lte_tol } => {
            format!("adaptive,{},{}", f64_bits(tstep_max), f64_bits(lte_tol))
        }
    };
    let solver = match sim.solver {
        SolverKind::Dense => "dense",
        SolverKind::Sparse => "sparse",
    };
    format!(
        "sim;reltol={};vntol={};abstol={};gmin={};iters={};tstep={};tstep_min={};method={method};timestep={timestep};solver={solver};damping={};rescue={};batch={}",
        f64_bits(sim.reltol),
        f64_bits(sim.vntol),
        f64_bits(sim.abstol),
        f64_bits(sim.gmin),
        sim.max_newton_iters,
        f64_bits(sim.tstep),
        f64_bits(sim.tstep_min),
        f64_bits(sim.newton_damping),
        sim.rescue,
        sim.batch,
    )
}

/// Fingerprint of everything besides the injected netlist that decides a
/// campaign item's record: solver options, clock stimulus, detection
/// criteria (with the sensor's actual logic threshold `v_th`), IDDQ
/// patterns, skew check, deadline budget and retry policy. Worker-thread
/// count is excluded — results are thread-count invariant by design.
pub fn campaign_fingerprint(cfg: &CampaignConfig, v_th: f64) -> String {
    let mut fp = sim_options_fingerprint(&cfg.sim);
    let c = &cfg.clocks;
    let _ = write!(
        fp,
        "|clocks;{};{};{};{};{};{}",
        f64_bits(c.vdd),
        f64_bits(c.delay),
        f64_bits(c.slew),
        f64_bits(c.width),
        f64_bits(c.period),
        f64_bits(c.skew),
    );
    let _ = write!(
        fp,
        "|criteria;v_th={};t_hold={};iddq={}",
        f64_bits(v_th),
        f64_bits(cfg.criteria.t_hold),
        f64_bits(cfg.criteria.iddq_threshold),
    );
    fp.push_str("|iddq_patterns");
    for &(a, b) in &cfg.iddq_patterns {
        let _ = write!(fp, ";{},{}", f64_bits(a), f64_bits(b));
    }
    let _ = write!(
        fp,
        "|skew_check={}",
        cfg.skew_check.map_or("-".to_string(), f64_bits),
    );
    let _ = write!(
        fp,
        "|deadline={};retry={}",
        duration_field(cfg.item_deadline),
        cfg.retry,
    );
    fp
}

fn outcome_field(outcome: DetectionOutcome) -> &'static str {
    match outcome {
        DetectionOutcome::DetectedLogic => "logic",
        DetectionOutcome::DetectedIddq => "iddq",
        DetectionOutcome::Undetected => "undetected",
        DetectionOutcome::Inconclusive => "inconclusive",
    }
}

fn parse_outcome(field: &str) -> Option<DetectionOutcome> {
    Some(match field {
        "logic" => DetectionOutcome::DetectedLogic,
        "iddq" => DetectionOutcome::DetectedIddq,
        "undetected" => DetectionOutcome::Undetected,
        "inconclusive" => DetectionOutcome::Inconclusive,
        _ => return None,
    })
}

fn failure_kind_field(kind: FailureKind) -> &'static str {
    match kind {
        FailureKind::Panic => "panic",
        FailureKind::NonConvergence => "non-convergence",
        FailureKind::Deadline => "deadline",
        FailureKind::Other => "other",
    }
}

fn parse_failure_kind(field: &str) -> Option<FailureKind> {
    Some(match field {
        "panic" => FailureKind::Panic,
        "non-convergence" => FailureKind::NonConvergence,
        "deadline" => FailureKind::Deadline,
        "other" => FailureKind::Other,
        _ => return None,
    })
}

/// Serialises a final [`FaultRecord`] into journal fields:
/// `[fault_id, outcome, iddq, masks_skew, retried, failure_kind, failure_detail]`
/// with `-` standing for absent optionals and all floats as exact bit
/// patterns.
pub fn encode_fault_record(record: &FaultRecord) -> Vec<String> {
    vec![
        record.fault.id(),
        outcome_field(record.outcome).to_string(),
        record.iddq.map_or("-".to_string(), f64_bits),
        match record.masks_skew {
            None => "-".to_string(),
            Some(false) => "0".to_string(),
            Some(true) => "1".to_string(),
        },
        if record.retried { "1" } else { "0" }.to_string(),
        record
            .failure
            .as_ref()
            .map_or("-", |f| failure_kind_field(f.kind))
            .to_string(),
        record
            .failure
            .as_ref()
            .map_or(String::new(), |f| f.detail.clone()),
    ]
}

/// Reconstructs a [`FaultRecord`] from journal fields, cross-checking the
/// stored fault id against `fault` (a hash collision or aliased journal
/// entry decodes to `None` and counts as a memo miss, never as a wrong
/// verdict).
pub fn decode_fault_record(fields: &[String], fault: &Fault) -> Option<FaultRecord> {
    if fields.len() != 7 || fields[0] != fault.id() {
        return None;
    }
    let outcome = parse_outcome(&fields[1])?;
    let iddq = match fields[2].as_str() {
        "-" => None,
        bits => Some(parse_f64_bits(bits)?),
    };
    let masks_skew = match fields[3].as_str() {
        "-" => None,
        "0" => Some(false),
        "1" => Some(true),
        _ => return None,
    };
    let retried = match fields[4].as_str() {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let failure = match fields[5].as_str() {
        "-" => None,
        kind => Some(FailureInfo {
            kind: parse_failure_kind(kind)?,
            detail: fields[6].clone(),
        }),
    };
    // A failure reason travels exactly on inconclusive records; anything
    // else is a corrupt entry.
    if (failure.is_some()) != (outcome == DetectionOutcome::Inconclusive) {
        return None;
    }
    Some(FaultRecord {
        fault: fault.clone(),
        outcome,
        iddq,
        masks_skew,
        failure,
        retried,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StuckLevel;
    use clocksense_core::ClockPair;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("clocksense_journal_{}_{name}", std::process::id()))
    }

    fn sample_record(retried: bool) -> FaultRecord {
        FaultRecord {
            fault: Fault::NodeStuckAt {
                node: "y1".into(),
                level: StuckLevel::Zero,
            },
            outcome: DetectionOutcome::Inconclusive,
            iddq: Some(42.5e-6),
            masks_skew: Some(true),
            failure: Some(FailureInfo {
                kind: FailureKind::NonConvergence,
                detail: "worst node \"n1\"\n\tdelta=1e-3".into(),
            }),
            retried,
        }
    }

    #[test]
    fn journal_round_trips_records() {
        let path = tmp_path("round_trip");
        let _ = fs::remove_file(&path);
        let mut j = Journal::open(&path).unwrap();
        assert!(j.is_empty());
        j.append(0xabc, TAG_FAULT, &["a".into(), "b\tc".into()])
            .unwrap();
        j.append(0xdef, TAG_MC, &["x\ny".into()]).unwrap();
        let j2 = Journal::open(&path).unwrap();
        assert_eq!(j2.len(), 2);
        assert_eq!(
            j2.lookup(0xabc, TAG_FAULT).unwrap(),
            &["a".to_string(), "b\tc".to_string()]
        );
        assert_eq!(j2.lookup(0xdef, TAG_MC).unwrap(), &["x\ny".to_string()]);
        // Tag mismatch and unknown hash both miss.
        assert!(j2.lookup(0xabc, TAG_MC).is_none());
        assert!(j2.lookup(0x123, TAG_FAULT).is_none());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let path = tmp_path("truncated");
        let _ = fs::remove_file(&path);
        let mut j = Journal::open(&path).unwrap();
        j.append(1, TAG_FAULT, &["one".into()]).unwrap();
        j.append(2, TAG_FAULT, &["two".into()]).unwrap();
        // Emulate a crashed writer tearing the last line.
        let text = fs::read_to_string(&path).unwrap();
        let torn = &text[..text.len() - 5];
        fs::write(&path, torn).unwrap();
        let j2 = Journal::open(&path).unwrap();
        assert_eq!(j2.len(), 1);
        assert!(j2.lookup(1, TAG_FAULT).is_some());
        assert!(j2.lookup(2, TAG_FAULT).is_none());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn mid_record_corruption_is_skipped_not_fatal() {
        let path = tmp_path("mid_corrupt");
        let _ = fs::remove_file(&path);
        let mut j = Journal::open(&path).unwrap();
        j.append(1, TAG_FAULT, &["one".into()]).unwrap();
        j.append(2, TAG_FAULT, &["two".into()]).unwrap();
        j.append(3, TAG_FAULT, &["three".into()]).unwrap();
        // Flip a bit inside the *middle* record's hash field: the line
        // count is unchanged, but record 2 no longer parses as itself.
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.split('\n').collect();
        let mangled = lines[2].replacen('0', "z", 1);
        let corrupted = [lines[0], lines[1], &mangled, lines[3], ""].join("\n");
        fs::write(&path, corrupted).unwrap();
        let j2 = Journal::open(&path).unwrap();
        // Records before AND after the corrupt line both survive.
        assert_eq!(j2.len(), 2);
        assert!(j2.lookup(1, TAG_FAULT).is_some());
        assert!(j2.lookup(2, TAG_FAULT).is_none());
        assert!(j2.lookup(3, TAG_FAULT).is_some());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn hash_field_must_be_exactly_sixteen_hex_digits() {
        assert!(parse_entry("0123456789abcdef\tfault\tx").is_some());
        assert!(parse_entry("123\tfault\tx").is_none());
        assert!(parse_entry("0123456789abcdeff\tfault\tx").is_none());
        assert!(parse_entry("0123456789abcdeg\tfault\tx").is_none());
        assert!(parse_entry("0123456789abcdef\t\tx").is_none());
        assert!(parse_entry("").is_none());
    }

    #[test]
    fn foreign_header_loads_empty() {
        let path = tmp_path("foreign");
        fs::write(&path, "some-other-format/v9\n1\tfault\tx\n").unwrap();
        let j = Journal::open(&path).unwrap();
        assert!(j.is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn latest_entry_wins() {
        let path = tmp_path("latest");
        let _ = fs::remove_file(&path);
        let mut j = Journal::open(&path).unwrap();
        j.append(7, TAG_FAULT, &["old".into()]).unwrap();
        j.append(7, TAG_FAULT, &["new".into()]).unwrap();
        assert_eq!(j.lookup(7, TAG_FAULT).unwrap(), &["new".to_string()]);
        let j2 = Journal::open(&path).unwrap();
        assert_eq!(j2.lookup(7, TAG_FAULT).unwrap(), &["new".to_string()]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fault_record_codec_round_trips() {
        for retried in [false, true] {
            let record = sample_record(retried);
            let fields = encode_fault_record(&record);
            let back = decode_fault_record(&fields, &record.fault).unwrap();
            assert_eq!(back, record);
        }
        // Plain verdicts too.
        let record = FaultRecord {
            fault: Fault::StuckOn {
                device: "m_b".into(),
            },
            outcome: DetectionOutcome::DetectedIddq,
            iddq: Some(1.25e-4),
            masks_skew: None,
            failure: None,
            retried: false,
        };
        let fields = encode_fault_record(&record);
        assert_eq!(decode_fault_record(&fields, &record.fault).unwrap(), record);
        // Wrong fault id is a miss, not a misread.
        let other = Fault::StuckOn {
            device: "m_c".into(),
        };
        assert!(decode_fault_record(&fields, &other).is_none());
    }

    #[test]
    fn fingerprint_tracks_every_knob() {
        let base = CampaignConfig::new(ClockPair::single_shot(5.0, 0.2e-9));
        let fp = campaign_fingerprint(&base, 2.5);
        let mut sim = base.clone();
        sim.sim.reltol *= 2.0;
        assert_ne!(campaign_fingerprint(&sim, 2.5), fp);
        let mut retry = base.clone();
        retry.retry = false;
        assert_ne!(campaign_fingerprint(&retry, 2.5), fp);
        let mut clocks = base.clone();
        clocks.clocks.skew += 1e-12;
        assert_ne!(campaign_fingerprint(&clocks, 2.5), fp);
        assert_ne!(campaign_fingerprint(&base, 2.500001), fp);
        // Thread count is not part of the identity.
        let mut threads = base.clone();
        threads.threads = 7;
        assert_eq!(campaign_fingerprint(&threads, 2.5), fp);
    }
}
