//! Detection under dirty stimulus: jitter, duty distortion, droop.
//!
//! The characterization campaigns all assume clean periodic clocks.
//! This bench renders impaired multi-cycle trains with `DirtyClock`
//! (explicit PWL corners — every perturbed edge is a simulator
//! breakpoint by construction) and drives the sensor test bench with a
//! fixed injected skew near twice its flip threshold:
//!
//! * **differential jitter** — independently-seeded cycle-to-cycle
//!   jitter on the two inputs adds a random per-cycle component on top
//!   of the injected skew. Cycles whose effective skew drops under the
//!   threshold go undetected: the per-cycle detection rate falls as the
//!   jitter amplitude approaches the injected skew.
//! * **duty distortion** — narrows/widens the high phase of one input.
//!   A rising-edge sensor must not care (the rising edges are
//!   untouched), so full per-cycle detection is asserted across the
//!   sweep.
//! * **supply droop on the stimulus** — both inputs sag cycle by
//!   cycle. Detection holds while the drooped swing still crosses the
//!   switching thresholds, and the bench records where it breaks.
//!
//! Each transient also audits the breakpoint contract at runtime:
//! every rendered corner time of both trains must appear exactly in
//! the result's time vector (`edges_total == edges_on_grid`, gated in
//! CI). The adaptive marcher is used for exactly that reason — it is
//! the path that would smear edges if they were not declared.

use clocksense_bench::{print_header, ps, scaled, Table};
use clocksense_core::{interpret, ClockPair, SensorBuilder, Technology};
use clocksense_scenarios::{DirtyClock, PulseSpec};
use clocksense_spice::{transient, SimOptions, SolverKind, TimestepControl};

/// Counts `times` values present (to `tol`) in the sorted transient
/// grid. The render/breakpoint contract makes "present" mean *exact up
/// to the `tstep_min` dedup*, hence the tiny tolerance.
fn edges_on_grid(times: &[f64], grid: &[f64], tol: f64) -> u64 {
    times
        .iter()
        .filter(|&&t| {
            let idx = grid.partition_point(|&g| g < t - tol);
            grid.get(idx).is_some_and(|&g| (g - t).abs() <= tol)
        })
        .count() as u64
}

struct CycleTally {
    detected: u64,
    cycles: u64,
}

/// Simulates the sensor bench on a dirty pair and tallies per-cycle
/// detection plus the breakpoint audit.
fn run_pair(
    sensor: &clocksense_core::SensingCircuit,
    a: &DirtyClock,
    b: &DirtyClock,
    skew: f64,
    opts: &SimOptions,
) -> CycleTally {
    let tele = clocksense_telemetry::global().scope("dirty_stimulus");
    let wave_a = a.render().expect("train renders");
    let wave_b = b.render().expect("train renders");
    let bench = sensor
        .testbench_with_waves(wave_a, wave_b)
        .expect("bench builds");
    let t_stop = a.t_stop().max(b.t_stop());
    let result = transient(&bench, t_stop, opts).expect("dirty transient");
    tele.counter("sims_total").incr();

    let mut edge_times = a.edge_times().expect("valid train");
    edge_times.extend(b.edge_times().expect("valid train"));
    edge_times.retain(|&t| t <= t_stop);
    let on_grid = edges_on_grid(&edge_times, result.times(), 2.0 * opts.tstep_min);
    tele.counter("edges_total").add(edge_times.len() as u64);
    tele.counter("edges_on_grid").add(on_grid);
    assert_eq!(
        on_grid,
        edge_times.len() as u64,
        "dirty edges missing from the transient grid"
    );

    let (y1, y2) = sensor.outputs();
    let v_th = sensor.technology().logic_threshold();
    let vdd = sensor.technology().vdd;
    let spec = a.base;
    let mut detected = 0u64;
    let mut cycles = 0u64;
    for k in 0..a.cycles.min(b.cycles) {
        // Strobe cycle k through the clean-cycle window geometry; the
        // jitter excursions are well inside the window slack.
        let clocks = ClockPair {
            vdd,
            delay: spec.delay + k as f64 * spec.period,
            slew: spec.rise,
            width: spec.width,
            period: f64::INFINITY,
            skew,
        };
        if clocks.sim_stop_time() > t_stop {
            break;
        }
        let response = interpret(
            result.waveform(y1),
            result.waveform(y2),
            &clocks,
            sensor.edge(),
            v_th,
        );
        cycles += 1;
        if response.verdict.is_error() {
            detected += 1;
        }
    }
    tele.counter("cycles_total").add(cycles);
    tele.counter("cycles_detected").add(detected);
    CycleTally { detected, cycles }
}

fn main() {
    let bench = clocksense_bench::report::start("dirty_stimulus");
    let tele = &bench.tele;
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech)
        .load_capacitance(80e-15)
        .build()
        .expect("valid sensor");
    // Adaptive marching: the path that smears undeclared edges.
    let opts = SimOptions {
        solver: SolverKind::Sparse,
        tstep: 2e-12,
        timestep: TimestepControl::Adaptive {
            tstep_max: 20e-12,
            lte_tol: 1.0,
        },
        ..SimOptions::default()
    };

    let cycles = scaled(12, 5);
    // A roomy train: 2 ns high phases leave the strobe window clear of
    // the impairment excursions.
    let base = PulseSpec {
        v1: 0.0,
        v2: tech.vdd,
        delay: 0.3e-9,
        rise: 0.1e-9,
        fall: 0.1e-9,
        width: 2.0e-9,
        period: 5.0e-9,
    };
    let skew = 120e-12;

    print_header(&format!(
        "Per-cycle detection of {} injected skew under dirty stimulus ({cycles} cycles)",
        ps(skew)
    ));
    let mut table = Table::new(&["impairment", "setting", "detected", "cycles"]);

    // Clean reference: every cycle must detect the injected skew.
    let clean = DirtyClock::clean(base, cycles);
    let tally = run_pair(&sensor, &clean, &clean.shifted(skew), skew, &opts);
    assert_eq!(
        tally.detected, tally.cycles,
        "clean train must detect the reference skew on every cycle"
    );
    table.row(&[
        "none".into(),
        "-".into(),
        format!("{}", tally.detected),
        format!("{}", tally.cycles),
    ]);

    // Differential jitter: independent seeds on the two inputs.
    for amp_ps in [20.0, 60.0, 120.0, 180.0] {
        let amp = amp_ps * 1e-12;
        let a = DirtyClock::clean(base, cycles).with_jitter(amp, 11);
        let b = DirtyClock::clean(base, cycles)
            .with_jitter(amp, 97)
            .shifted(skew);
        let tally = run_pair(&sensor, &a, &b, skew, &opts);
        tele.counter(&format!("jitter_{}ps_detected", amp_ps as u64))
            .add(tally.detected);
        table.row(&[
            "jitter".into(),
            ps(amp),
            format!("{}", tally.detected),
            format!("{}", tally.cycles),
        ]);
    }

    // Duty distortion on one input: rising edges untouched.
    for duty in [0.05, 0.15, 0.3] {
        let a = DirtyClock::clean(base, cycles);
        let b = DirtyClock::clean(base, cycles)
            .with_duty_error(-duty)
            .shifted(skew);
        let tally = run_pair(&sensor, &a, &b, skew, &opts);
        assert_eq!(
            tally.detected, tally.cycles,
            "duty distortion of {duty} must not mask a rising-edge skew"
        );
        table.row(&[
            "duty".into(),
            format!("-{:.0}%", duty * 100.0),
            format!("{}", tally.detected),
            format!("{}", tally.cycles),
        ]);
    }

    // Supply droop on both inputs.
    let mut droop_breakdown = None;
    for droop in [0.05, 0.15, 0.3, 0.5] {
        let a = DirtyClock::clean(base, cycles).with_droop(droop, 3.0);
        let b = a.shifted(skew);
        let tally = run_pair(&sensor, &a, &b, skew, &opts);
        if tally.detected < tally.cycles && droop_breakdown.is_none() {
            droop_breakdown = Some(droop);
        }
        table.row(&[
            "droop".into(),
            format!("{:.0}%", droop * 100.0),
            format!("{}", tally.detected),
            format!("{}", tally.cycles),
        ]);
    }
    println!("{}", table.render());
    if let Some(droop) = droop_breakdown {
        println!("droop detection breaks down at {:.0}%", droop * 100.0);
        tele.counter("droop_breakdown_pct")
            .add((droop * 100.0) as u64);
    } else {
        println!("detection held across the whole droop sweep");
    }

    bench.finish();
}
