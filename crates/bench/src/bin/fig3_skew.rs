//! Fig. 3 — input and output waveforms in the presence of a skew between
//! the monitored clock signals.
//!
//! Expected shape (paper): with φ2 late, y1 completes its falling
//! transition while y2 keeps its high value, giving the statically held
//! error indication (y1, y2) = (0, 1) for half of the clock period.

use clocksense_bench::{ascii_chart, print_header, ps};
use clocksense_core::{ClockPair, SensorBuilder, SkewVerdict, Technology};
use clocksense_spice::SimOptions;
use clocksense_wave::Waveform;

fn main() {
    let _bench = clocksense_bench::report::start("fig3_skew");
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech)
        .load_capacitance(160e-15)
        .build()
        .expect("valid default sensor");
    let skew = 0.5e-9;
    let clocks = ClockPair::single_shot(tech.vdd, 0.2e-9).with_skew(skew);
    let response = sensor
        .simulate(&clocks, &SimOptions::default())
        .expect("simulation converges");

    print_header(&format!("Fig. 3: phi2 late by {} ps", ps(skew)));
    let (w1, w2) = clocks.waveforms();
    let stop = clocks.sim_stop_time();
    let phi1 = Waveform::from_fn(0.0, stop, 400, |t| w1.value_at(t));
    let phi2 = Waveform::from_fn(0.0, stop, 400, |t| w2.value_at(t));
    println!(
        "{}",
        ascii_chart(
            &[
                ("phi1", &phi1),
                ("phi2", &phi2),
                ("y1", &response.y1),
                ("y2", &response.y2)
            ],
            (0.0, stop),
            (-0.5, 6.5),
            100,
            22,
        )
    );
    println!("verdict: {}", response.verdict);
    println!(
        "V_min(y1) = {:.3} V (falls fully), V_min(y2) = {:.3} V (held high)",
        response.vmin_y1, response.vmin_y2
    );
    let v_th = tech.logic_threshold();
    let held_from = response
        .y2
        .falling_crossings(v_th)
        .first()
        .copied()
        .unwrap_or(stop);
    println!(
        "error indication (0,1) holds for >= {} ps (paper: half of the clock period)",
        ps(held_from.min(stop) - clocks.delay)
    );
    assert_eq!(response.verdict, SkewVerdict::Phi2Late);
}
