//! Tests of the convergence rescue ladder, the failure diagnostics and
//! the cooperative deadline.
//!
//! The pathological bench is a two-stage (high combined gain) CMOS
//! buffer whose input edge crosses the switching threshold inside a
//! single minimum-size step: the internal nodes must swing rail to rail
//! in one Newton solve, which a tiny iteration budget cannot do from the
//! previous-point warm start. The local gmin ramp converges the same
//! timepoint by walking the solve in from a heavily damped system.

use std::time::Duration;

use clocksense_netlist::{Circuit, MosParams, MosPolarity, SourceWave, GROUND};
use clocksense_spice::{
    transient, Deadline, IntegrationMethod, SimOptions, SpiceError, TimestepControl,
};

fn nmos() -> MosParams {
    MosParams {
        vth0: 0.7,
        kp: 60e-6,
        lambda: 0.02,
        w: 4e-6,
        l: 1.2e-6,
        cgs: 3e-15,
        cgd: 3e-15,
        cdb: 2e-15,
    }
}

fn pmos() -> MosParams {
    MosParams {
        vth0: -0.9,
        kp: 20e-6,
        w: 8e-6,
        ..nmos()
    }
}

/// Two cascaded inverters driven by a ramp that crosses the switching
/// threshold inside one minimum step, with options that starve Newton:
/// the second stage swings rail to rail in a single solve. Both supplies
/// start at 0 V so the t = 0 operating point is trivial — the failure
/// must come from a transient step, where the ladder can reach it.
fn pathological_bench() -> Circuit {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    let mid = ckt.node("mid");
    let out = ckt.node("out");
    ckt.add_vsource("vdd", vdd, GROUND, SourceWave::step(0.0, 5.0, 0.0, 0.4e-9))
        .unwrap();
    ckt.add_vsource(
        "vin",
        inp,
        GROUND,
        SourceWave::step(0.0, 5.0, 1.0e-9, 0.01e-12),
    )
    .unwrap();
    for (name, i, o) in [("s1", inp, mid), ("s2", mid, out)] {
        ckt.add_mosfet(&format!("{name}_p"), MosPolarity::Pmos, o, i, vdd, pmos())
            .unwrap();
        ckt.add_mosfet(
            &format!("{name}_n"),
            MosPolarity::Nmos,
            o,
            i,
            GROUND,
            nmos(),
        )
        .unwrap();
    }
    ckt.add_capacitor("cm", mid, GROUND, 5e-15).unwrap();
    ckt.add_capacitor("cl", out, GROUND, 5e-15).unwrap();
    ckt
}

/// Options that starve the Newton loop while keeping the halving range
/// too short to smooth the transition: the threshold crossing must be
/// taken in one `tstep_min`-scale solve.
fn starved_opts() -> SimOptions {
    SimOptions {
        tstep: 100e-12,
        tstep_min: 40e-12,
        max_newton_iters: 3,
        ..SimOptions::default()
    }
}

#[test]
fn pathological_bench_fails_without_rescue_and_converges_with_it() {
    let ckt = pathological_bench();
    let no_rescue = SimOptions {
        rescue: false,
        ..starved_opts()
    };
    let err = transient(&ckt, 2e-9, &no_rescue).expect_err("bench must defeat the bare engine");
    assert!(
        matches!(err, SpiceError::NonConvergence { .. }),
        "got {err:?}"
    );
    // Diagnostics travel on the error even without the ladder.
    let diag = err
        .diagnostics()
        .expect("non-convergence carries diagnostics");
    assert!(diag.worst_node.is_some());
    assert!(!diag.delta_history.is_empty());
    assert!(diag.stages_tried.is_empty(), "no rescue ran");

    let rescued = transient(&ckt, 2e-9, &starved_opts())
        .expect("the rescue ladder must converge the same bench");
    let out = rescued.waveform_named("out").unwrap();
    // The buffer output ends high (input high -> mid low -> out high).
    assert!(out.value_at(2e-9) > 4.5);
}

#[test]
fn adaptive_marcher_is_also_rescued() {
    let ckt = pathological_bench();
    let adaptive = |rescue| SimOptions {
        timestep: TimestepControl::Adaptive {
            tstep_max: 200e-12,
            lte_tol: 1.0,
        },
        rescue,
        ..starved_opts()
    };
    assert!(
        transient(&ckt, 2e-9, &adaptive(false)).is_err(),
        "bench must defeat the bare adaptive engine"
    );
    let rescued = transient(&ckt, 2e-9, &adaptive(true)).expect("adaptive rescue must converge");
    assert!(rescued.waveform_named("out").unwrap().value_at(2e-9) > 4.5);
}

#[test]
fn ladder_failure_reports_stages_and_worst_node() {
    // A current source feeding a node whose only other element is a
    // cut-off transistor channel: the node is held by gmin alone, so its
    // solution sits at I/gmin = 1e6 V. Under the 2 V damping clamp no
    // iteration budget reaches that, and each descending gmin rung moves
    // the target another decade away — every ladder stage must fail.
    let mut ckt = Circuit::new();
    let float = ckt.node("float");
    ckt.add_isource(
        "iin",
        GROUND,
        float,
        SourceWave::step(0.0, 1e-6, 0.2e-9, 0.01e-12),
    )
    .unwrap();
    let no_caps = MosParams {
        cgs: 0.0,
        cgd: 0.0,
        cdb: 0.0,
        ..nmos()
    };
    ckt.add_mosfet("mn", MosPolarity::Nmos, float, GROUND, GROUND, no_caps)
        .unwrap();
    let opts = SimOptions {
        tstep: 100e-12,
        tstep_min: 40e-12,
        ..SimOptions::default()
    };
    let err = transient(&ckt, 1e-9, &opts).expect_err("nothing can converge this");
    let diag = err
        .diagnostics()
        .expect("ladder failure carries diagnostics");
    assert!(
        !diag.stages_tried.is_empty(),
        "the tried rescue stages must be recorded"
    );
    assert!(diag.worst_node.is_some());
    // The error display folds the diagnostics in for logs and reports.
    let text = err.to_string();
    assert!(text.contains("rescue"), "{text}");
}

#[test]
fn clean_circuit_goldens_are_bit_identical_with_rescue_enabled() {
    // An RC low-pass plus inverter: converges first try everywhere, so
    // the ladder must be a strict no-op — times and samples bitwise
    // equal with rescue on and off, in both marching modes.
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource("vdd", vdd, GROUND, SourceWave::Dc(5.0))
        .unwrap();
    ckt.add_vsource(
        "vin",
        inp,
        GROUND,
        SourceWave::step(0.0, 5.0, 0.5e-9, 0.2e-9),
    )
    .unwrap();
    ckt.add_mosfet("mp", MosPolarity::Pmos, out, inp, vdd, pmos())
        .unwrap();
    ckt.add_mosfet("mn", MosPolarity::Nmos, out, inp, GROUND, nmos())
        .unwrap();
    ckt.add_capacitor("cl", out, GROUND, 20e-15).unwrap();

    for timestep in [
        TimestepControl::Fixed,
        TimestepControl::Adaptive {
            tstep_max: 200e-12,
            lte_tol: 1.0,
        },
    ] {
        let with = SimOptions {
            timestep,
            rescue: true,
            ..SimOptions::default()
        };
        let without = SimOptions {
            rescue: false,
            ..with.clone()
        };
        let a = transient(&ckt, 3e-9, &with).unwrap();
        let b = transient(&ckt, 3e-9, &without).unwrap();
        assert_eq!(a.times(), b.times(), "grids must be bitwise identical");
        for name in ["in", "mid", "out"] {
            let (wa, wb) = match (a.waveform_named(name), b.waveform_named(name)) {
                (Some(wa), Some(wb)) => (wa, wb),
                _ => continue,
            };
            assert_eq!(wa, wb, "node {name} must be bitwise identical");
        }
    }
}

#[test]
fn expired_deadline_aborts_the_transient() {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource("vin", inp, GROUND, SourceWave::step(0.0, 1.0, 0.0, 1e-12))
        .unwrap();
    ckt.add_resistor("r", inp, out, 1e3).unwrap();
    ckt.add_capacitor("c", out, GROUND, 1e-12).unwrap();
    let opts = SimOptions {
        deadline: Some(Deadline::after(Duration::ZERO)),
        ..SimOptions::default()
    };
    let err = transient(&ckt, 5e-9, &opts).unwrap_err();
    assert!(
        matches!(err, SpiceError::DeadlineExceeded { .. }),
        "got {err:?}"
    );
}

#[test]
fn cancelled_deadline_aborts_mid_run_methods_too() {
    // BackwardEuler + adaptive combination, cancelled before the run:
    // both marchers must poll the token.
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource("vin", inp, GROUND, SourceWave::step(0.0, 1.0, 0.0, 1e-12))
        .unwrap();
    ckt.add_resistor("r", inp, out, 1e3).unwrap();
    ckt.add_capacitor("c", out, GROUND, 1e-12).unwrap();
    let token = Deadline::manual();
    token.cancel();
    let opts = SimOptions {
        deadline: Some(token),
        method: IntegrationMethod::BackwardEuler,
        timestep: TimestepControl::Adaptive {
            tstep_max: 100e-12,
            lte_tol: 1.0,
        },
        ..SimOptions::default()
    };
    let err = transient(&ckt, 5e-9, &opts).unwrap_err();
    assert!(matches!(err, SpiceError::DeadlineExceeded { .. }));
}

#[test]
fn unexpired_deadline_changes_nothing() {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource("vin", inp, GROUND, SourceWave::step(0.0, 1.0, 0.0, 1e-12))
        .unwrap();
    ckt.add_resistor("r", inp, out, 1e3).unwrap();
    ckt.add_capacitor("c", out, GROUND, 1e-12).unwrap();
    let with = SimOptions {
        deadline: Some(Deadline::after(Duration::from_secs(3600))),
        ..SimOptions::default()
    };
    let without = SimOptions::default();
    let a = transient(&ckt, 2e-9, &with).unwrap();
    let b = transient(&ckt, 2e-9, &without).unwrap();
    assert_eq!(a.times(), b.times());
    assert_eq!(a.waveform_named("out"), b.waveform_named("out"));
}
