//! Criterion benchmarks for the clock-tree substrate: the O(n) tree
//! transient solver against the dense MNA engine, Elmore analysis and the
//! zero-skew router.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clocksense_clocktree::{zero_skew_tree, HTree, Point, RcTree, Sink, WireParasitics};
use clocksense_netlist::{Circuit, SourceWave, GROUND};
use clocksense_spice::{transient, SimOptions};

/// Mirrors an RC tree into a flat MNA circuit for the comparison bench.
fn to_circuit(tree: &RcTree, driver_r: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let src = ckt.node("src");
    ckt.add_vsource(
        "vin",
        src,
        GROUND,
        SourceWave::step(0.0, 5.0, 0.1e-9, 1e-12),
    )
    .expect("valid source");
    let root = ckt.node("n0");
    ckt.add_resistor("rdrv", src, root, driver_r)
        .expect("valid r");
    for id in tree.node_ids() {
        let name = format!("n{}", id.index());
        let node = ckt.node(&name);
        let cap = tree.capacitance(id);
        if cap > 0.0 {
            ckt.add_capacitor(&format!("c{}", id.index()), node, GROUND, cap)
                .expect("valid c");
        }
        if let Some(parent) = tree.parent(id) {
            let p = ckt.node(&format!("n{}", parent.index()));
            ckt.add_resistor(&format!("r{}", id.index()), p, node, tree.resistance(id))
                .expect("valid r");
        }
    }
    ckt
}

fn bench_tree_vs_dense(c: &mut Criterion) {
    let drive = SourceWave::step(0.0, 5.0, 0.1e-9, 1e-12);
    let mut group = c.benchmark_group("rc_tree_transient");
    group.sample_size(10);
    for levels in [1usize, 2, 3] {
        let htree = HTree::new(levels, 3e-3, WireParasitics::metal2());
        let tree = htree.to_rc_tree(40e-15);
        let n = tree.len();
        group.bench_with_input(BenchmarkId::new("tree_solver", n), &tree, |b, tree| {
            b.iter(|| {
                black_box(
                    tree.transient(&drive, 150.0, 4e-9, 2e-12, &[])
                        .expect("solves"),
                )
            })
        });
        // The dense engine is O(n^3) per step: only bench the sizes it
        // can finish in reasonable time.
        if n <= 100 {
            let ckt = to_circuit(&tree, 150.0);
            let opts = SimOptions {
                tstep: 2e-12,
                ..SimOptions::default()
            };
            group.bench_with_input(BenchmarkId::new("dense_mna", n), &ckt, |b, ckt| {
                b.iter(|| black_box(transient(ckt, 4e-9, &opts).expect("solves")))
            });
        }
    }
    group.finish();
}

fn bench_elmore(c: &mut Criterion) {
    let htree = HTree::new(4, 6e-3, WireParasitics::metal2());
    let tree = htree.to_rc_tree(40e-15);
    c.bench_function("elmore_1500_nodes", |b| {
        b.iter(|| black_box(tree.elmore_delays(150.0)))
    });
}

fn bench_zero_skew_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("zero_skew_router");
    group.sample_size(10);
    for n in [8usize, 32, 64] {
        let mut seed = 0x5851f42d4c957f2du64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let sinks: Vec<Sink> = (0..n)
            .map(|i| {
                Sink::new(
                    &format!("s{i}"),
                    Point::new(rnd() * 4e-3, rnd() * 4e-3),
                    (20.0 + 100.0 * rnd()) * 1e-15,
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &sinks, |b, sinks| {
            b.iter(|| black_box(zero_skew_tree(sinks, WireParasitics::metal2()).expect("routes")))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tree_vs_dense,
    bench_elmore,
    bench_zero_skew_router
);
criterion_main!(benches);
