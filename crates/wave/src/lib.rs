//! Waveform containers and analog measurement utilities for clocksense.
//!
//! A [`Waveform`] is a sampled signal — a strictly increasing time axis with
//! one value per sample — as produced by the transient simulator in
//! `clocksense-spice`. This crate provides the measurement vocabulary the
//! paper's evaluation needs: linear interpolation, windowed minima/maxima
//! ([`Waveform::min_in`] is how V_min in Fig. 4/5 is extracted), threshold
//! crossings, slew and delay measurements, and interpretation of analog
//! levels as logic values against a threshold ([`LogicLevel`]).
//!
//! # Examples
//!
//! ```
//! use clocksense_wave::Waveform;
//!
//! let ramp = Waveform::from_fn(0.0, 1.0, 101, |t| 5.0 * t);
//! assert!((ramp.value_at(0.5) - 2.5).abs() < 1e-9);
//! let cross = ramp.rising_crossings(2.5);
//! assert!((cross[0] - 0.5).abs() < 1e-9);
//! ```

mod logic;
mod measure;
mod waveform;

pub use logic::{LogicLevel, LogicThresholds};
pub use measure::{cross_delay, skew_between, slew_time};
pub use waveform::Waveform;
