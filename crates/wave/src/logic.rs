//! Interpretation of analog levels as logic values.

use crate::waveform::Waveform;

/// Logic interpretation of an analog voltage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicLevel {
    /// Below the low threshold.
    Low,
    /// Above the high threshold.
    High,
    /// Between the thresholds: neither a clean `0` nor a clean `1`.
    Indeterminate,
}

impl LogicLevel {
    /// Returns `true` for [`LogicLevel::High`].
    pub fn is_high(self) -> bool {
        self == LogicLevel::High
    }

    /// Returns `true` for [`LogicLevel::Low`].
    pub fn is_low(self) -> bool {
        self == LogicLevel::Low
    }
}

/// Threshold pair used to discretise analog levels.
///
/// The paper interprets the sensing-circuit response with a gate whose
/// logic threshold is `V_DD/2`, derated by a worst-case ±10 % parameter
/// variation, giving `V_th = 2.75 V` for a 5 V supply. That corresponds to
/// [`LogicThresholds::single`]`(2.75)`, where one voltage separates the two
/// logic values; [`LogicThresholds::with_guard_band`] instead leaves an
/// indeterminate band, which detection criteria can treat pessimistically.
///
/// # Examples
///
/// ```
/// use clocksense_wave::{LogicLevel, LogicThresholds};
///
/// let th = LogicThresholds::single(2.75);
/// assert_eq!(th.classify(5.0), LogicLevel::High);
/// assert_eq!(th.classify(0.3), LogicLevel::Low);
///
/// let guarded = LogicThresholds::with_guard_band(2.5, 0.5);
/// assert_eq!(guarded.classify(2.5), LogicLevel::Indeterminate);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogicThresholds {
    v_low: f64,
    v_high: f64,
}

impl LogicThresholds {
    /// A single switching threshold: at or above is high, below is low.
    pub fn single(v_th: f64) -> Self {
        LogicThresholds {
            v_low: v_th,
            v_high: v_th,
        }
    }

    /// A threshold at `center` with an indeterminate band of `±half_band`.
    ///
    /// # Panics
    ///
    /// Panics if `half_band` is negative.
    pub fn with_guard_band(center: f64, half_band: f64) -> Self {
        assert!(half_band >= 0.0, "guard band must be non-negative");
        LogicThresholds {
            v_low: center - half_band,
            v_high: center + half_band,
        }
    }

    /// The voltage below which a level is [`LogicLevel::Low`].
    pub fn v_low(&self) -> f64 {
        self.v_low
    }

    /// The voltage at or above which a level is [`LogicLevel::High`].
    pub fn v_high(&self) -> f64 {
        self.v_high
    }

    /// Classifies a single voltage.
    pub fn classify(&self, v: f64) -> LogicLevel {
        if v >= self.v_high {
            LogicLevel::High
        } else if v < self.v_low {
            LogicLevel::Low
        } else {
            LogicLevel::Indeterminate
        }
    }

    /// Classifies the value of `w` at time `t`.
    pub fn classify_at(&self, w: &Waveform, t: f64) -> LogicLevel {
        self.classify(w.value_at(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_threshold_has_no_band() {
        let th = LogicThresholds::single(2.5);
        assert_eq!(th.classify(2.5), LogicLevel::High);
        assert_eq!(th.classify(2.4999), LogicLevel::Low);
    }

    #[test]
    fn guard_band_classification() {
        let th = LogicThresholds::with_guard_band(2.5, 0.5);
        assert_eq!(th.classify(3.0), LogicLevel::High);
        assert_eq!(th.classify(2.99), LogicLevel::Indeterminate);
        assert_eq!(th.classify(2.0), LogicLevel::Indeterminate);
        assert_eq!(th.classify(1.99), LogicLevel::Low);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_band_panics() {
        LogicThresholds::with_guard_band(2.5, -0.1);
    }

    #[test]
    fn classify_waveform_at_time() {
        let th = LogicThresholds::single(2.5);
        let w = Waveform::new(vec![0.0, 1.0], vec![0.0, 5.0]);
        assert_eq!(th.classify_at(&w, 0.1), LogicLevel::Low);
        assert_eq!(th.classify_at(&w, 0.9), LogicLevel::High);
    }

    #[test]
    fn level_predicates() {
        assert!(LogicLevel::High.is_high());
        assert!(!LogicLevel::High.is_low());
        assert!(LogicLevel::Low.is_low());
        assert!(!LogicLevel::Indeterminate.is_high());
        assert!(!LogicLevel::Indeterminate.is_low());
    }
}
