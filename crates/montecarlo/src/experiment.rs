//! The Monte-Carlo scatter experiment (paper Fig. 5).

use std::thread;

use clocksense_core::{ClockPair, CoreError, SensorBuilder};
use clocksense_spice::{transient, SimOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::perturb::perturb_circuit_global;

/// Configuration of a Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Number of samples.
    pub samples: usize,
    /// Relative uniform spread of every circuit parameter (the paper's
    /// 0.15).
    pub spread: f64,
    /// Uniform range of the two independent input slews (the paper's
    /// 0.1–0.4 ns).
    pub slew_range: (f64, f64),
    /// Master seed; every sample derives its own deterministic stream.
    pub seed: u64,
    /// Simulator options.
    pub sim: SimOptions,
    /// Worker threads (`0` = one per core).
    pub threads: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            samples: 500,
            spread: 0.15,
            slew_range: (0.1e-9, 0.4e-9),
            seed: 0x1997_0317,
            sim: SimOptions {
                tstep: 2e-12,
                ..SimOptions::default()
            },
            threads: 0,
        }
    }
}

/// One Monte-Carlo observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McSample {
    /// Injected skew (s).
    pub tau: f64,
    /// Minimum voltage of the late output in the observation window (V).
    pub vmin: f64,
    /// `true` if the response reads as an error indication
    /// (`vmin > V_th`).
    pub detected: bool,
    /// Drawn slew of φ1 (s).
    pub slew1: f64,
    /// Drawn slew of φ2 (s).
    pub slew2: f64,
}

fn one_sample(
    builder: &SensorBuilder,
    clocks: &ClockPair,
    tau: f64,
    cfg: &McConfig,
    index: u64,
) -> Result<McSample, CoreError> {
    // Independent, reproducible stream per sample.
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9e3779b97f4a7c15) ^ index);
    let mut sensor = builder.build()?;
    perturb_circuit_global(sensor.circuit_mut(), cfg.spread, &["cl1", "cl2"], &mut rng);
    let (lo, hi) = cfg.slew_range;
    let slew1 = rng.gen_range(lo..=hi);
    let slew2 = rng.gen_range(lo..=hi);

    // The skew tau is defined between the mid-rail crossings of the two
    // edges — the instant the clocked elements actually see. With
    // independent slews the pulse-start offset must compensate for the
    // mid-ramp difference, otherwise slew mismatch aliases into skew.
    let start_offset = tau + 0.5 * (slew1 - slew2);
    let clocks = clocks.with_skew(start_offset);
    let bench = sensor.testbench_with_slews(&clocks, slew1, slew2)?;
    let result = transient(&bench, clocks.sim_stop_time(), &cfg.sim)?;
    let (y1, y2) = sensor.outputs();
    let v_th = sensor.technology().logic_threshold();
    let response = clocksense_core::interpret(
        result.waveform(y1),
        result.waveform(y2),
        &clocks,
        sensor.edge(),
        v_th,
    );
    // An indication on either output counts: under variation the residual
    // asymmetry can put the indication on the "wrong" side near tau = 0.
    let vmin = response.vmin_y1.max(response.vmin_y2);
    Ok(McSample {
        tau,
        vmin,
        detected: vmin > v_th,
        slew1,
        slew2,
    })
}

/// Runs the Fig. 5 scatter: `cfg.samples` perturbed circuits, each
/// simulated at one skew from `taus` (cycled in order, so every skew value
/// receives an equal share of samples).
///
/// # Errors
///
/// Propagates construction/simulation errors from any sample; rejects an
/// empty `taus` list.
pub fn run_scatter(
    builder: &SensorBuilder,
    clocks: &ClockPair,
    taus: &[f64],
    cfg: &McConfig,
) -> Result<Vec<McSample>, CoreError> {
    if taus.is_empty() {
        return Err(CoreError::InvalidParameter(
            "tau list must not be empty".to_string(),
        ));
    }
    let threads = if cfg.threads == 0 {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    };
    let tele = clocksense_telemetry::global().scope("montecarlo");
    let samples_run = tele.counter("samples");
    let chunks_run = tele.counter("chunks");
    let chunk_wall = tele.timer("chunk_wall");
    let indices: Vec<usize> = (0..cfg.samples).collect();
    let chunk_size = cfg.samples.div_ceil(threads).max(1);
    let mut slots: Vec<Option<Result<McSample, CoreError>>> = vec![None; cfg.samples];
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for (chunk_idx, chunk) in indices.chunks(chunk_size).enumerate() {
            let samples_run = samples_run.clone();
            let chunks_run = chunks_run.clone();
            let chunk_wall = chunk_wall.clone();
            handles.push((
                chunk_idx,
                scope.spawn(move || {
                    let stopwatch = chunk_wall.start();
                    let out = chunk
                        .iter()
                        .map(|&i| {
                            let tau = taus[i % taus.len()];
                            one_sample(builder, clocks, tau, cfg, i as u64)
                        })
                        .collect::<Vec<_>>();
                    stopwatch.stop();
                    chunks_run.incr();
                    samples_run.add(out.len() as u64);
                    out
                }),
            ));
        }
        for (chunk_idx, handle) in handles {
            for (i, r) in handle
                .join()
                .expect("mc worker panicked")
                .into_iter()
                .enumerate()
            {
                slots[chunk_idx * chunk_size + i] = Some(r);
            }
        }
    });
    let samples: Result<Vec<McSample>, CoreError> = slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect();
    if let Ok(samples) = &samples {
        let detected = samples.iter().filter(|s| s.detected).count();
        tele.counter("detected").add(detected as u64);
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksense_core::Technology;

    fn quick_cfg(samples: usize) -> McConfig {
        McConfig {
            samples,
            sim: SimOptions {
                tstep: 4e-12,
                ..SimOptions::default()
            },
            ..McConfig::default()
        }
    }

    #[test]
    fn scatter_is_deterministic_and_covers_taus() {
        let tech = Technology::cmos12();
        let builder = SensorBuilder::new(tech).load_capacitance(160e-15);
        let clocks = ClockPair::single_shot(tech.vdd, 0.2e-9);
        let taus = [0.0, 0.3e-9];
        let a = run_scatter(&builder, &clocks, &taus, &quick_cfg(4)).unwrap();
        let b = run_scatter(&builder, &clocks, &taus, &quick_cfg(4)).unwrap();
        assert_eq!(a, b, "same seed, same results");
        assert_eq!(a.len(), 4);
        assert_eq!(a.iter().filter(|s| s.tau == 0.0).count(), 2);
        // Large skews stay detected even under parameter variation. Zero
        // skew may produce marginal false indications (that is exactly the
        // p_false of Tab. 1), but its V_min stays well below a genuinely
        // blocked output.
        for s in &a {
            if s.tau == 0.0 {
                assert!(s.vmin < 3.5, "zero-skew vmin implausibly high: {s:?}");
            } else {
                assert!(s.detected, "0.3 ns skew lost: {s:?}");
            }
        }
    }

    #[test]
    fn slews_are_drawn_from_the_range() {
        let tech = Technology::cmos12();
        let builder = SensorBuilder::new(tech).load_capacitance(80e-15);
        let clocks = ClockPair::single_shot(tech.vdd, 0.2e-9);
        let samples = run_scatter(&builder, &clocks, &[0.05e-9], &quick_cfg(6)).unwrap();
        for s in &samples {
            assert!((0.1e-9..=0.4e-9).contains(&s.slew1));
            assert!((0.1e-9..=0.4e-9).contains(&s.slew2));
        }
        // Independent draws: not all equal.
        assert!(samples.iter().any(|s| (s.slew1 - s.slew2).abs() > 1e-12));
    }

    #[test]
    fn empty_taus_is_an_error() {
        let tech = Technology::cmos12();
        let builder = SensorBuilder::new(tech);
        let clocks = ClockPair::single_shot(tech.vdd, 0.2e-9);
        assert!(run_scatter(&builder, &clocks, &[], &quick_cfg(1)).is_err());
    }
}
