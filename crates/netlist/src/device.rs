//! Passive devices and independent sources.

use crate::mos::Mosfet;
use crate::node::NodeId;
use crate::waveform::SourceWave;

/// A linear resistor between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Resistor {
    /// First terminal.
    pub a: NodeId,
    /// Second terminal.
    pub b: NodeId,
    /// Resistance in ohms; must be positive.
    pub ohms: f64,
}

/// A linear capacitor between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    /// First terminal.
    pub a: NodeId,
    /// Second terminal.
    pub b: NodeId,
    /// Capacitance in farads; must be positive.
    pub farads: f64,
}

/// An independent voltage source.
///
/// The source forces `V(plus) - V(minus) = wave(t)` and its branch current
/// becomes an extra MNA unknown, which is how the simulator measures supply
/// currents (IDDQ).
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageSource {
    /// Positive terminal.
    pub plus: NodeId,
    /// Negative terminal.
    pub minus: NodeId,
    /// Value as a function of time.
    pub wave: SourceWave,
}

/// An independent current source pushing current from `from` into `to`.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentSource {
    /// Terminal the current leaves.
    pub from: NodeId,
    /// Terminal the current enters.
    pub to: NodeId,
    /// Value as a function of time (amperes).
    pub wave: SourceWave,
}

/// Any device understood by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum Device {
    /// Linear resistor.
    Resistor(Resistor),
    /// Linear capacitor.
    Capacitor(Capacitor),
    /// Independent voltage source.
    VoltageSource(VoltageSource),
    /// Independent current source.
    CurrentSource(CurrentSource),
    /// Level-1 MOSFET.
    Mosfet(Mosfet),
}

impl Device {
    /// Returns the nodes this device connects to, in terminal order.
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            Device::Resistor(r) => vec![r.a, r.b],
            Device::Capacitor(c) => vec![c.a, c.b],
            Device::VoltageSource(v) => vec![v.plus, v.minus],
            Device::CurrentSource(i) => vec![i.from, i.to],
            Device::Mosfet(m) => vec![m.drain, m.gate, m.source],
        }
    }

    /// Returns `true` if the device is a MOSFET.
    pub fn is_mosfet(&self) -> bool {
        matches!(self, Device::Mosfet(_))
    }

    /// Returns the MOSFET payload if this device is one.
    pub fn as_mosfet(&self) -> Option<&Mosfet> {
        match self {
            Device::Mosfet(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable access to the MOSFET payload if this device is one.
    pub fn as_mosfet_mut(&mut self) -> Option<&mut Mosfet> {
        match self {
            Device::Mosfet(m) => Some(m),
            _ => None,
        }
    }

    /// A short SPICE-like kind tag, used in error messages and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Device::Resistor(_) => "R",
            Device::Capacitor(_) => "C",
            Device::VoltageSource(_) => "V",
            Device::CurrentSource(_) => "I",
            Device::Mosfet(_) => "M",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mos::{MosParams, MosPolarity};
    use crate::node::GROUND;

    #[test]
    fn nodes_in_terminal_order() {
        let m = Device::Mosfet(Mosfet {
            polarity: MosPolarity::Nmos,
            drain: NodeId::from_index(3),
            gate: NodeId::from_index(1),
            source: GROUND,
            params: MosParams {
                vth0: 0.7,
                kp: 60e-6,
                lambda: 0.0,
                w: 2e-6,
                l: 1e-6,
                cgs: 0.0,
                cgd: 0.0,
                cdb: 0.0,
            },
        });
        assert_eq!(
            m.nodes(),
            vec![NodeId::from_index(3), NodeId::from_index(1), GROUND]
        );
        assert!(m.is_mosfet());
        assert_eq!(m.kind(), "M");
    }

    #[test]
    fn kind_tags() {
        let r = Device::Resistor(Resistor {
            a: GROUND,
            b: GROUND,
            ohms: 1.0,
        });
        assert_eq!(r.kind(), "R");
        assert!(r.as_mosfet().is_none());
    }
}
