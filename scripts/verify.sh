#!/usr/bin/env bash
# Tier-1 verification: build, test, and doc the whole workspace.
# Run from the repository root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps"
cargo doc --no-deps

echo "verify: OK"
