//! Digital signal traces: a value history per net.

/// The history of one net: an initial value and a list of `(time, value)`
/// transitions in non-decreasing time order.
///
/// `None` models the unknown value `X` (e.g. an uninitialised flip-flop).
///
/// # Examples
///
/// ```
/// use clocksense_digital::DigitalSignal;
///
/// let mut s = DigitalSignal::new(Some(false));
/// s.push(1e-9, Some(true));
/// s.push(3e-9, Some(false));
/// assert_eq!(s.value_at(0.5e-9), Some(false));
/// assert_eq!(s.value_at(2e-9), Some(true));
/// assert_eq!(s.transition_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigitalSignal {
    initial: Option<bool>,
    transitions: Vec<(u64, Option<bool>)>,
}

/// Internal time quantum: 1 fs keeps every practical delay exactly
/// representable and ordering exact.
pub(crate) const QUANTUM: f64 = 1e-15;

pub(crate) fn to_ticks(t: f64) -> u64 {
    (t / QUANTUM).round() as u64
}

pub(crate) fn from_ticks(ticks: u64) -> f64 {
    ticks as f64 * QUANTUM
}

impl DigitalSignal {
    /// A signal starting at `initial` with no transitions.
    pub fn new(initial: Option<bool>) -> Self {
        DigitalSignal {
            initial,
            transitions: Vec::new(),
        }
    }

    /// Appends a transition at time `t` (seconds). Transitions to the
    /// current value are dropped; a transition at the same instant as the
    /// previous one replaces it.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last recorded transition.
    pub fn push(&mut self, t: f64, value: Option<bool>) {
        let ticks = to_ticks(t);
        if let Some(&(last_t, last_v)) = self.transitions.last() {
            assert!(ticks >= last_t, "transitions must be time-ordered");
            if ticks == last_t {
                self.transitions.pop();
                let before = self
                    .transitions
                    .last()
                    .map(|&(_, v)| v)
                    .unwrap_or(self.initial);
                if before != value {
                    self.transitions.push((ticks, value));
                }
                return;
            }
            if last_v == value {
                return;
            }
        } else if self.initial == value {
            return;
        }
        self.transitions.push((ticks, value));
    }

    /// The value at time `t` (transitions take effect at their instant).
    pub fn value_at(&self, t: f64) -> Option<bool> {
        let ticks = to_ticks(t);
        let idx = self.transitions.partition_point(|&(tt, _)| tt <= ticks);
        if idx == 0 {
            self.initial
        } else {
            self.transitions[idx - 1].1
        }
    }

    /// Number of recorded transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The transitions as `(seconds, value)` pairs.
    pub fn transitions(&self) -> impl Iterator<Item = (f64, Option<bool>)> + '_ {
        self.transitions.iter().map(|&(t, v)| (from_ticks(t), v))
    }

    /// Times of transitions *to* the given value.
    pub fn edges_to(&self, value: bool) -> Vec<f64> {
        self.transitions
            .iter()
            .filter(|&&(_, v)| v == Some(value))
            .map(|&(t, _)| from_ticks(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut s = DigitalSignal::new(Some(false));
        s.push(1e-9, Some(true));
        s.push(2e-9, Some(false));
        assert_eq!(s.value_at(0.0), Some(false));
        assert_eq!(s.value_at(1e-9), Some(true));
        assert_eq!(s.value_at(1.5e-9), Some(true));
        assert_eq!(s.value_at(5e-9), Some(false));
    }

    #[test]
    fn redundant_transitions_are_dropped() {
        let mut s = DigitalSignal::new(Some(true));
        s.push(1e-9, Some(true));
        assert_eq!(s.transition_count(), 0);
        s.push(2e-9, Some(false));
        s.push(3e-9, Some(false));
        assert_eq!(s.transition_count(), 1);
    }

    #[test]
    fn same_instant_replaces_and_cancels() {
        let mut s = DigitalSignal::new(Some(false));
        s.push(1e-9, Some(true));
        // A replacement back to the pre-transition value cancels it.
        s.push(1e-9, Some(false));
        assert_eq!(s.transition_count(), 0);
        assert_eq!(s.value_at(2e-9), Some(false));
    }

    #[test]
    fn unknown_values_flow_through() {
        let mut s = DigitalSignal::new(None);
        assert_eq!(s.value_at(0.0), None);
        s.push(1e-9, Some(true));
        assert_eq!(s.value_at(2e-9), Some(true));
    }

    #[test]
    fn edges_filter_by_polarity() {
        let mut s = DigitalSignal::new(Some(false));
        s.push(1e-9, Some(true));
        s.push(2e-9, Some(false));
        s.push(3e-9, Some(true));
        assert_eq!(s.edges_to(true).len(), 2);
        assert_eq!(s.edges_to(false).len(), 1);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut s = DigitalSignal::new(Some(false));
        s.push(2e-9, Some(true));
        s.push(1e-9, Some(false));
    }
}
