//! Simulation options.

use crate::error::SpiceError;

/// Time-integration method for the transient analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrationMethod {
    /// Trapezoidal rule, with a backward-Euler step after DC and after each
    /// source breakpoint to damp the trapezoidal start-up ringing. This is
    /// the default and matches common SPICE practice.
    #[default]
    Trapezoidal,
    /// Backward Euler throughout: more damping, first-order accurate.
    BackwardEuler,
}

/// Tolerances and controls for DC and transient analyses.
///
/// The defaults mirror Berkeley SPICE (`reltol = 1e-3`, `vntol = 1e-6`,
/// `abstol = 1e-12`, `gmin = 1e-12`) with a 1 ps base time step suited to
/// the sub-nanosecond edges of the paper's experiments.
///
/// # Examples
///
/// ```
/// use clocksense_spice::SimOptions;
///
/// let opts = SimOptions {
///     tstep: 0.5e-12,
///     ..SimOptions::default()
/// };
/// assert!(opts.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Relative convergence tolerance on node voltages.
    pub reltol: f64,
    /// Absolute convergence tolerance on node voltages (V).
    pub vntol: f64,
    /// Absolute convergence tolerance on branch currents (A).
    pub abstol: f64,
    /// Minimum conductance added across MOSFET channels (S).
    pub gmin: f64,
    /// Maximum Newton iterations per solve point.
    pub max_newton_iters: usize,
    /// Base transient time step (s).
    pub tstep: f64,
    /// Smallest time step the step-halving control may reach before giving
    /// up with [`SpiceError::NonConvergence`].
    ///
    /// [`SpiceError::NonConvergence`]: crate::SpiceError::NonConvergence
    pub tstep_min: f64,
    /// Integration method.
    pub method: IntegrationMethod,
    /// Largest per-iteration Newton voltage update (V); larger updates are
    /// clamped, which tames the quadratic Level-1 characteristics.
    pub newton_damping: f64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            reltol: 1e-3,
            vntol: 1e-6,
            abstol: 1e-12,
            gmin: 1e-12,
            max_newton_iters: 100,
            tstep: 1e-12,
            tstep_min: 1e-16,
            method: IntegrationMethod::default(),
            newton_damping: 2.0,
        }
    }
}

impl SimOptions {
    /// Checks that every option lies in its valid domain.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidOption`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<(), SpiceError> {
        let positive = [
            ("reltol", self.reltol),
            ("vntol", self.vntol),
            ("abstol", self.abstol),
            ("gmin", self.gmin),
            ("tstep", self.tstep),
            ("tstep_min", self.tstep_min),
            ("newton_damping", self.newton_damping),
        ];
        for (name, v) in positive {
            if !(v.is_finite() && v > 0.0) {
                return Err(SpiceError::InvalidOption(format!(
                    "{name} must be finite and positive, got {v}"
                )));
            }
        }
        if self.max_newton_iters < 2 {
            return Err(SpiceError::InvalidOption(
                "max_newton_iters must be at least 2".to_string(),
            ));
        }
        if self.tstep_min > self.tstep {
            return Err(SpiceError::InvalidOption(
                "tstep_min must not exceed tstep".to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SimOptions::default().validate().unwrap();
    }

    #[test]
    fn bad_options_are_named() {
        let o = SimOptions {
            tstep: -1.0,
            ..SimOptions::default()
        };
        let err = o.validate().unwrap_err();
        assert!(err.to_string().contains("tstep"));

        let o = SimOptions {
            max_newton_iters: 1,
            ..SimOptions::default()
        };
        assert!(o.validate().is_err());

        let o = SimOptions {
            tstep_min: 1.0,
            ..SimOptions::default()
        };
        assert!(o.validate().is_err());
    }

    #[test]
    fn default_method_is_trapezoidal() {
        assert_eq!(SimOptions::default().method, IntegrationMethod::Trapezoidal);
    }
}
