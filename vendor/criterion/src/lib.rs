//! Offline vendored subset of the
//! [`criterion`](https://crates.io/crates/criterion) 0.5 API.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the slice of `criterion` its benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical pipeline, each benchmark runs
//! a short warm-up followed by `sample_size` timed samples (bounded by a
//! per-benchmark wall-clock budget) and prints the mean and minimum
//! sample time. That is enough to track the perf trajectory of the
//! workspace between commits; it makes no outlier or significance
//! claims.
//!
//! # Examples
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default();
//! c.bench_function("sum_1_to_100", |b| {
//!     b.iter(|| (1u64..=100).map(black_box).sum::<u64>())
//! });
//! ```

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark wall-clock budget; sampling stops early once exceeded.
const SAMPLE_BUDGET: Duration = Duration::from_secs(5);

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures for one benchmark; handed to the `|b| ...` callbacks.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly: a short warm-up, then up to
    /// `sample_size` timed samples within the wall-clock budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        let budget_start = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.durations.push(t0.elapsed());
            if budget_start.elapsed() > SAMPLE_BUDGET {
                break;
            }
        }
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(1),
        durations: Vec::new(),
    };
    f(&mut b);
    if b.durations.is_empty() {
        println!("bench {label:<40} (no samples)");
        return;
    }
    let total: Duration = b.durations.iter().sum();
    let mean = total / b.durations.len() as u32;
    let min = b.durations.iter().min().expect("non-empty");
    println!(
        "bench {label:<40} mean {mean:>12?}   min {min:>12?}   samples {n}",
        n = b.durations.len(),
    );
}

/// A named set of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for upstream compatibility; throughput is not reported.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Throughput annotation, accepted but not reported.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.default_sample_size, &mut f);
        self
    }
}

/// Bundles benchmark functions into one group runner, as in upstream
/// criterion's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u32;
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| b.iter(|| seen = x));
        group.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("1ps").to_string(), "1ps");
    }

    criterion_group!(sample_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("macro_noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macro_group_is_callable() {
        sample_group();
    }
}
