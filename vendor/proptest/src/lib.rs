//! Offline vendored subset of the
//! [`proptest`](https://crates.io/crates/proptest) 1.x API.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the slice of `proptest` its property tests
//! use: the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`arbitrary::any`], [`collection::vec`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   assertion message; inputs are not minimised.
//! * **Deterministic generation.** Case `k` of every test draws from a
//!   fixed seed derived from `k`, so failures reproduce without a
//!   persistence file.
//!
//! # Examples
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
//!
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # addition_commutes();
//! ```
//!
//! Inside a test module each item normally carries `#[test]` (the macro
//! forwards attributes); the example above invokes the generated
//! function directly instead.

pub mod test_runner {
    //! Test-runner configuration and error types.

    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for upstream compatibility; shrinking is not
        /// implemented, so this is ignored.
        pub max_shrink_iters: u32,
        /// Maximum number of `prop_assume!` rejections tolerated before
        /// the test aborts.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed — the property is violated.
        Fail(String),
        /// The case was rejected by `prop_assume!` and should be skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The deterministic generator for case `case` of a property test.
    pub fn rng_for_case(case: u32) -> TestRng {
        TestRng::seed_from_u64(
            0x70726f_70746573u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, StandardSample};
    use std::marker::PhantomData;

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: StandardSample> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: StandardSample>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias so `prop::collection::vec(...)` works as in
    /// upstream proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares deterministic property tests.
///
/// Supports the upstream form used across this workspace: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are written `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]: one generated `#[test]` per item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rejects: u32 = 0;
            let mut case: u32 = 0;
            let mut draws: u32 = 0;
            while case < config.cases {
                let mut __rng = $crate::test_runner::rng_for_case(draws);
                draws += 1;
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        assert!(
                            rejects <= config.max_global_rejects,
                            "proptest `{}`: too many prop_assume! rejections ({rejects})",
                            stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at case {case} (draw {d}): {msg}",
                            stringify!($name),
                            d = draws - 1,
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{}: {:?} == {:?}", format!($($fmt)+), l, r);
    }};
}

/// Skips the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..2.5, k in 3u64..9) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&k));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b),
            flag in any::<bool>(),
        ) {
            prop_assert!(pair <= 18);
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0u64..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn failing_property_panics_with_message() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

            #[allow(dead_code)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails"), "got: {msg}");
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::rng_for_case(5);
        let mut b = crate::test_runner::rng_for_case(5);
        use rand::Rng;
        assert_eq!(a.gen::<f64>(), b.gen::<f64>());
    }
}
