//! Electrical co-simulation of the sensing circuit and the
//! transistor-level indicator cell: the complete analog detection chain
//! of the paper's Fig. 6, in one MNA system.

use clocksense::checker::IndicatorCell;
use clocksense::core::{ClockPair, SensorBuilder, Technology};
use clocksense::netlist::{instantiate, Circuit, PortMap, SourceWave, GROUND};
use clocksense::spice::{transient, SimOptions};

fn indicator_cell(tech: Technology) -> clocksense::checker::BuiltIndicatorCell {
    IndicatorCell::new(tech.nmos_params(3e-6), tech.pmos_params(6e-6))
        .build()
        .expect("valid cell")
}

fn opts() -> SimOptions {
    SimOptions {
        tstep: 2e-12,
        ..SimOptions::default()
    }
}

/// Drives the bare indicator cell with explicit input waveforms and
/// returns the err output waveform.
fn drive_cell(
    tech: Technology,
    w1: SourceWave,
    w2: SourceWave,
    t_stop: f64,
) -> clocksense::wave::Waveform {
    let cell = indicator_cell(tech);
    let mut bench = Circuit::new();
    let vdd = bench.node("vdd");
    let a = bench.node("a");
    let b = bench.node("b");
    let reset = bench.node("reset");
    bench
        .add_vsource("vdd", vdd, GROUND, SourceWave::Dc(tech.vdd))
        .expect("supply");
    bench.add_vsource("va", a, GROUND, w1).expect("input a");
    bench.add_vsource("vb", b, GROUND, w2).expect("input b");
    // Power-up reset: an SR latch wakes in an arbitrary state, so real
    // usage clears it before monitoring starts.
    bench
        .add_vsource(
            "vreset",
            reset,
            GROUND,
            SourceWave::Pulse {
                v1: 0.0,
                v2: 5.0,
                delay: 0.1e-9,
                rise: 0.1e-9,
                fall: 0.1e-9,
                width: 0.5e-9,
                period: f64::INFINITY,
            },
        )
        .expect("reset");
    instantiate(
        &mut bench,
        cell.circuit(),
        "u_ind",
        PortMap::new()
            .map("vdd", vdd)
            .map("in1", a)
            .map("in2", b)
            .map("reset", reset),
    )
    .expect("instantiates");
    let result = transient(&bench, t_stop, &opts()).expect("simulates");
    result.waveform_named("u_ind.err").expect("err exists")
}

#[test]
fn cell_latches_a_complementary_pulse_and_holds() {
    let tech = Technology::cmos12();
    // Inputs equal (high) except a 1 ns window where they are complementary.
    let w1 = SourceWave::Dc(5.0);
    let w2 = SourceWave::Pulse {
        v1: 5.0,
        v2: 0.0,
        delay: 2e-9,
        rise: 0.2e-9,
        fall: 0.2e-9,
        width: 1e-9,
        period: f64::INFINITY,
    };
    let err = drive_cell(tech, w1, w2, 8e-9);
    assert!(err.value_at(1.5e-9) < 0.5, "clean before the event");
    assert!(
        err.value_at(4e-9) > 4.0,
        "latched during the event: {}",
        err.value_at(4e-9)
    );
    assert!(
        err.value_at(7.5e-9) > 4.0,
        "held after the inputs equalise: {}",
        err.value_at(7.5e-9)
    );
}

#[test]
fn cell_ignores_common_mode_activity() {
    let tech = Technology::cmos12();
    // Both inputs toggle together: never complementary.
    let pulse = SourceWave::Pulse {
        v1: 0.0,
        v2: 5.0,
        delay: 1e-9,
        rise: 0.2e-9,
        fall: 0.2e-9,
        width: 1.5e-9,
        period: 4e-9,
    };
    let err = drive_cell(tech, pulse.clone(), pulse, 10e-9);
    assert!(
        err.max_in(0.5e-9, 10e-9) < 1.0,
        "common-mode switching must not set the latch: {}",
        err.max_in(0.5e-9, 10e-9)
    );
}

#[test]
fn reset_clears_the_latch() {
    let tech = Technology::cmos12();
    let cell = indicator_cell(tech);
    let mut bench = Circuit::new();
    let vdd = bench.node("vdd");
    let a = bench.node("a");
    let b = bench.node("b");
    let reset = bench.node("reset");
    bench
        .add_vsource("vdd", vdd, GROUND, SourceWave::Dc(5.0))
        .unwrap();
    bench
        .add_vsource("va", a, GROUND, SourceWave::Dc(5.0))
        .unwrap();
    // A complementary window 1..2 ns sets the latch; reset pulses at 5 ns.
    bench
        .add_vsource(
            "vb",
            b,
            GROUND,
            SourceWave::Pwl(vec![
                (0.0, 5.0),
                (1e-9, 5.0),
                (1.2e-9, 0.0),
                (2e-9, 0.0),
                (2.2e-9, 5.0),
            ]),
        )
        .unwrap();
    bench
        .add_vsource(
            "vreset",
            reset,
            GROUND,
            SourceWave::Pulse {
                v1: 0.0,
                v2: 5.0,
                delay: 5e-9,
                rise: 0.2e-9,
                fall: 0.2e-9,
                width: 1e-9,
                period: f64::INFINITY,
            },
        )
        .unwrap();
    instantiate(
        &mut bench,
        cell.circuit(),
        "u_ind",
        PortMap::new()
            .map("vdd", vdd)
            .map("in1", a)
            .map("in2", b)
            .map("reset", reset),
    )
    .unwrap();
    let result = transient(&bench, 8e-9, &opts()).unwrap();
    let err = result.waveform_named("u_ind.err").unwrap();
    assert!(err.value_at(4e-9) > 4.0, "latched: {}", err.value_at(4e-9));
    assert!(
        err.value_at(7.5e-9) < 0.5,
        "cleared: {}",
        err.value_at(7.5e-9)
    );
}

/// The full analog chain: sensor and indicator in one circuit. A skewed
/// clock pair sets the electrical latch; a clean pair does not.
#[test]
fn sensor_and_indicator_co_simulate() {
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech)
        .load_capacitance(80e-15)
        .build()
        .expect("valid sensor");
    let cell = indicator_cell(tech);

    for (skew, expect_latch) in [(0.4e-9, true), (0.0, false)] {
        let clocks = ClockPair::single_shot(tech.vdd, 0.2e-9).with_skew(skew);
        let mut bench = sensor.testbench(&clocks).expect("bench builds");
        let vdd = bench.node("vdd");
        let y1 = bench.node("y1");
        let y2 = bench.node("y2");
        let reset = bench.node("ind_reset");
        // Power-up reset pulse before the clock edges arrive.
        bench
            .add_vsource(
                "vreset",
                reset,
                GROUND,
                SourceWave::Pulse {
                    v1: 0.0,
                    v2: 5.0,
                    delay: 0.1e-9,
                    rise: 0.1e-9,
                    fall: 0.1e-9,
                    width: 0.5e-9,
                    period: f64::INFINITY,
                },
            )
            .expect("reset source");
        instantiate(
            &mut bench,
            cell.circuit(),
            "u_ind",
            PortMap::new()
                .map("vdd", vdd)
                .map("in1", y1)
                .map("in2", y2)
                .map("reset", reset),
        )
        .expect("instantiates");
        let result = transient(&bench, clocks.sim_stop_time(), &opts()).expect("simulates");
        let err = result.waveform_named("u_ind.err").expect("err exists");
        let level = err.value_at(clocks.sim_stop_time());
        if expect_latch {
            assert!(level > 4.0, "skewed pair must latch, err = {level}");
        } else {
            assert!(level < 0.5, "clean pair must stay clear, err = {level}");
        }
    }
}

/// The electrical two-rail checker cell implements the morphic truth
/// table: valid codeword inputs give valid outputs; any invalid input
/// yields an invalid output.
#[test]
fn electrical_trc_cell_truth_table() {
    use clocksense::checker::trc_cell_circuit;
    use clocksense::spice::dc_operating_point;

    let tech = Technology::cmos12();
    let cell =
        trc_cell_circuit(tech.nmos_params(3e-6), tech.pmos_params(6e-6)).expect("valid cell");
    let cases = [
        // (x0, x1, y0, y1) -> expected (z0, z1) validity and values.
        ((0.0, 5.0), (0.0, 5.0), Some((true, false))),
        ((0.0, 5.0), (5.0, 0.0), Some((false, true))),
        ((5.0, 0.0), (0.0, 5.0), Some((false, true))),
        ((5.0, 0.0), (5.0, 0.0), Some((true, false))),
        // Invalid inputs propagate invalidity (z0 == z1).
        ((0.0, 0.0), (0.0, 5.0), None),
        ((5.0, 5.0), (5.0, 0.0), None),
    ];
    for ((x0, x1), (y0, y1), expect) in cases {
        let mut bench = Circuit::new();
        let vdd = bench.node("vdd");
        bench
            .add_vsource("vdd", vdd, GROUND, SourceWave::Dc(5.0))
            .unwrap();
        for (name, value) in [("x0", x0), ("x1", x1), ("y0", y0), ("y1", y1)] {
            let node = bench.node(name);
            bench
                .add_vsource(&format!("v{name}"), node, GROUND, SourceWave::Dc(value))
                .unwrap();
        }
        let mut ports = PortMap::new().map("vdd", vdd);
        for name in ["x0", "x1", "y0", "y1"] {
            let node = bench.node(name);
            ports = ports.map(name, node);
        }
        instantiate(&mut bench, &cell, "u", ports).unwrap();
        let op = dc_operating_point(&bench, &opts()).expect("op converges");
        let z0 = op.voltage(bench.find_node("u.z0").unwrap()) > 2.5;
        let z1 = op.voltage(bench.find_node("u.z1").unwrap()) > 2.5;
        match expect {
            Some((e0, e1)) => {
                assert_eq!((z0, z1), (e0, e1), "inputs ({x0},{x1},{y0},{y1})");
            }
            None => {
                assert_eq!(z0, z1, "invalid input must give invalid (equal) outputs");
            }
        }
    }
}
