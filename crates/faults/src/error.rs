//! Error type for fault injection and campaigns.

use std::error::Error;
use std::fmt;

use clocksense_core::CoreError;
use clocksense_netlist::NetlistError;
use clocksense_spice::SpiceError;

/// Errors produced while injecting faults or running campaigns.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// The fault references a node the circuit does not have.
    UnknownNode(String),
    /// The fault references a device the circuit does not have.
    UnknownDevice(String),
    /// A transistor fault was aimed at a non-MOSFET device.
    NotATransistor(String),
    /// The fault parameters are out of domain (e.g. non-positive bridge
    /// resistance).
    InvalidFault(String),
    /// Circuit manipulation failed.
    Netlist(NetlistError),
    /// Sensor-level simulation failed.
    Core(CoreError),
    /// Electrical simulation failed.
    Spice(SpiceError),
    /// Reading or writing the campaign checkpoint journal failed.
    Checkpoint(String),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::UnknownNode(n) => write!(f, "fault references unknown node {n:?}"),
            FaultError::UnknownDevice(d) => write!(f, "fault references unknown device {d:?}"),
            FaultError::NotATransistor(d) => {
                write!(f, "device {d:?} is not a transistor")
            }
            FaultError::InvalidFault(detail) => write!(f, "invalid fault: {detail}"),
            FaultError::Netlist(e) => write!(f, "netlist error: {e}"),
            FaultError::Core(e) => write!(f, "sensor error: {e}"),
            FaultError::Spice(e) => write!(f, "simulation error: {e}"),
            FaultError::Checkpoint(detail) => write!(f, "checkpoint journal error: {detail}"),
        }
    }
}

impl Error for FaultError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FaultError::Netlist(e) => Some(e),
            FaultError::Core(e) => Some(e),
            FaultError::Spice(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for FaultError {
    fn from(e: NetlistError) -> Self {
        FaultError::Netlist(e)
    }
}

impl From<CoreError> for FaultError {
    fn from(e: CoreError) -> Self {
        FaultError::Core(e)
    }
}

impl From<SpiceError> for FaultError {
    fn from(e: SpiceError) -> Self {
        FaultError::Spice(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_are_chained() {
        let e: FaultError = NetlistError::FloatingNode("x".into()).into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&FaultError::UnknownNode("n".into())).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FaultError>();
    }
}
