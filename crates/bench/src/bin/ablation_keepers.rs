//! Ablation — the optional full-swing keepers ("a suitable feedback
//! inverter driving a weak pull-down n-channel transistor can be added to
//! each block to provide full-swing performance").
//!
//! Compares output low levels, sensitivity and fault coverage with and
//! without the keepers.

use clocksense_bench::{print_header, ps, Table};
use clocksense_core::{find_tau_min, ClockPair, SensorBuilder, Technology};
use clocksense_faults::{run_campaign, sensor_fault_universe, CampaignConfig, FaultClass};
use clocksense_spice::SimOptions;

fn main() {
    let _bench = clocksense_bench::report::start("ablation_keepers");
    let tech = Technology::cmos12();
    let clocks = ClockPair::single_shot(tech.vdd, 0.2e-9);
    let opts = SimOptions {
        tstep: 2e-12,
        ..SimOptions::default()
    };

    print_header("Ablation: full-swing keepers on vs off");
    let mut table = Table::new(&[
        "variant",
        "V_min no-skew [V]",
        "tau_min [ps]",
        "devices",
        "SA cov",
        "SOn cov(L+I)",
        "bridge cov(L+I)",
    ]);
    for keepers in [false, true] {
        let sensor = SensorBuilder::new(tech)
            .load_capacitance(160e-15)
            .full_swing_keepers(keepers)
            .build()
            .expect("valid sensor");
        let response = sensor.simulate(&clocks, &opts).expect("sim converges");
        let tau_min = find_tau_min(&sensor, &clocks, 0.6e-9, 2e-12, &opts)
            .expect("bisection converges")
            .map(ps)
            .unwrap_or_else(|| "n/a".to_string());
        let faults = sensor_fault_universe(&sensor, 100.0);
        let mut cfg = CampaignConfig::new(clocks);
        cfg.threads = clocksense_bench::threads_arg();
        let result = run_campaign(&sensor, &faults, &cfg).expect("campaign runs");
        table.row(&[
            if keepers { "with keepers" } else { "bare" }.to_string(),
            format!("{:.3}", response.vmin_y1),
            tau_min,
            format!("{}", sensor.circuit().device_count()),
            format!(
                "{:.0}%",
                100.0 * result.combined_coverage(FaultClass::StuckAt)
            ),
            format!(
                "{:.0}%",
                100.0 * result.combined_coverage(FaultClass::StuckOn)
            ),
            format!(
                "{:.0}%",
                100.0 * result.combined_coverage(FaultClass::Bridge)
            ),
        ]);
    }
    println!("{}", table.render());
    println!(
        "the keepers pull the no-skew low level towards ground (full swing) at the\n\
         cost of six extra devices — which enlarge the fault universe — while the\n\
         sensitivity tau_min is essentially unchanged"
    );
}
