//! The fault models of the paper's Section 3.

use std::fmt;

/// Logic level a node is stuck at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StuckLevel {
    /// Stuck at logic 0 (shorted to ground).
    Zero,
    /// Stuck at logic 1 (shorted to the supply).
    One,
}

impl fmt::Display for StuckLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StuckLevel::Zero => f.write_str("0"),
            StuckLevel::One => f.write_str("1"),
        }
    }
}

/// Broad fault classes, used for per-class coverage reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultClass {
    /// Node stuck-at faults.
    StuckAt,
    /// Transistor stuck-open faults.
    StuckOpen,
    /// Transistor stuck-on faults.
    StuckOn,
    /// Resistive bridging faults.
    Bridge,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultClass::StuckAt => "stuck-at",
            FaultClass::StuckOpen => "stuck-open",
            FaultClass::StuckOn => "stuck-on",
            FaultClass::Bridge => "bridging",
        };
        f.write_str(s)
    }
}

/// A single structural fault, identified by node and device *names* so the
/// same fault description can be injected into any clone or test bench of
/// the circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// A node shorted to a rail (modelled as a low-resistance path, so
    /// faults on driven nodes remain solvable).
    NodeStuckAt {
        /// Node name.
        node: String,
        /// Rail the node is stuck at.
        level: StuckLevel,
    },
    /// A transistor that never conducts (removed from the netlist).
    StuckOpen {
        /// MOSFET device name.
        device: String,
    },
    /// A transistor that always conducts (gate tied to its ON rail).
    StuckOn {
        /// MOSFET device name.
        device: String,
    },
    /// A resistive bridge between two nodes — the paper uses 100 Ω,
    /// "the most common kind of failures in CMOS ICs".
    Bridge {
        /// First bridged node.
        a: String,
        /// Second bridged node.
        b: String,
        /// Bridge resistance (Ω).
        ohms: f64,
    },
}

impl Fault {
    /// The class this fault belongs to.
    pub fn class(&self) -> FaultClass {
        match self {
            Fault::NodeStuckAt { .. } => FaultClass::StuckAt,
            Fault::StuckOpen { .. } => FaultClass::StuckOpen,
            Fault::StuckOn { .. } => FaultClass::StuckOn,
            Fault::Bridge { .. } => FaultClass::Bridge,
        }
    }

    /// Short human-readable identifier, e.g. `"sa1(y1)"` or `"sop(m_c)"`.
    pub fn id(&self) -> String {
        match self {
            Fault::NodeStuckAt { node, level } => format!("sa{level}({node})"),
            Fault::StuckOpen { device } => format!("sop({device})"),
            Fault::StuckOn { device } => format!("son({device})"),
            Fault::Bridge { a, b, .. } => format!("bridge({a},{b})"),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable() {
        let f = Fault::NodeStuckAt {
            node: "y1".into(),
            level: StuckLevel::One,
        };
        assert_eq!(f.id(), "sa1(y1)");
        assert_eq!(f.class(), FaultClass::StuckAt);

        let f = Fault::Bridge {
            a: "y1".into(),
            b: "y2".into(),
            ohms: 100.0,
        };
        assert_eq!(f.id(), "bridge(y1,y2)");
        assert_eq!(f.to_string(), f.id());
    }

    #[test]
    fn class_display() {
        assert_eq!(FaultClass::StuckOpen.to_string(), "stuck-open");
        assert_eq!(FaultClass::Bridge.to_string(), "bridging");
    }
}
