//! Robustness tests for the MNA engine: pathological topologies,
//! bistable circuits, breakpoint-dense sources and accuracy checks.

use clocksense_netlist::{Circuit, MosParams, MosPolarity, SourceWave, GROUND};
use clocksense_spice::{dc_operating_point, transient, IntegrationMethod, SimOptions, SpiceError};

fn nmos() -> MosParams {
    MosParams {
        vth0: 0.7,
        kp: 60e-6,
        lambda: 0.02,
        w: 4e-6,
        l: 1.2e-6,
        cgs: 3e-15,
        cgd: 3e-15,
        cdb: 2e-15,
    }
}

fn pmos() -> MosParams {
    MosParams {
        vth0: -0.9,
        kp: 20e-6,
        w: 8e-6,
        ..nmos()
    }
}

/// Two ideal sources fighting on one node: the MNA system is inconsistent
/// and must be reported, not silently resolved.
#[test]
fn conflicting_ideal_sources_are_rejected() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.add_vsource("v1", a, GROUND, SourceWave::Dc(1.0))
        .unwrap();
    ckt.add_vsource("v2", a, GROUND, SourceWave::Dc(2.0))
        .unwrap();
    ckt.add_resistor("r", a, GROUND, 1e3).unwrap();
    let err = dc_operating_point(&ckt, &SimOptions::default()).unwrap_err();
    assert!(
        matches!(
            err,
            SpiceError::SingularMatrix | SpiceError::NonConvergence { .. }
        ),
        "got {err:?}"
    );
}

/// A CMOS latch (cross-coupled inverters) is bistable. Newton
/// continuation may land on the metastable midpoint — a legitimate
/// solution, and an exact equilibrium that a noiseless deterministic
/// integrator will sit on forever. The physical test of bistability is a
/// kick: a brief current pulse must set the latch, and the state must be
/// retained after the pulse ends.
#[test]
fn bistable_latch_sets_and_retains_state() {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource("vdd", vdd, GROUND, SourceWave::Dc(5.0))
        .unwrap();
    for (name, inp, out) in [("i1", a, b), ("i2", b, a)] {
        ckt.add_mosfet(
            &format!("{name}_p"),
            MosPolarity::Pmos,
            out,
            inp,
            vdd,
            pmos(),
        )
        .unwrap();
        ckt.add_mosfet(
            &format!("{name}_n"),
            MosPolarity::Nmos,
            out,
            inp,
            GROUND,
            nmos(),
        )
        .unwrap();
    }
    // The DC point exists (midpoint or railed, all are solutions).
    dc_operating_point(&ckt, &SimOptions::default()).unwrap();
    // Kick node a high with a 1 ns, 200 uA pulse, then release.
    ckt.add_isource(
        "kick",
        GROUND,
        a,
        SourceWave::Pulse {
            v1: 0.0,
            v2: 200e-6,
            delay: 1e-9,
            rise: 0.1e-9,
            fall: 0.1e-9,
            width: 1e-9,
            period: f64::INFINITY,
        },
    )
    .unwrap();
    let res = transient(
        &ckt,
        20e-9,
        &SimOptions {
            tstep: 10e-12,
            ..SimOptions::default()
        },
    )
    .unwrap();
    let va = res.waveform(a).value_at(20e-9);
    let vb = res.waveform(b).value_at(20e-9);
    assert!(
        va > 4.0 && vb < 1.0,
        "latch must retain the kicked state: a = {va}, b = {vb}"
    );
}

/// A long periodic source exercises the breakpoint scheduler: every edge
/// must be resolved (the inverter output toggles every cycle).
#[test]
fn dense_breakpoints_are_all_hit() {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource("vdd", vdd, GROUND, SourceWave::Dc(5.0))
        .unwrap();
    ckt.add_vsource(
        "vin",
        inp,
        GROUND,
        SourceWave::Pulse {
            v1: 0.0,
            v2: 5.0,
            delay: 0.5e-9,
            rise: 0.05e-9,
            fall: 0.05e-9,
            width: 0.4e-9,
            period: 1e-9,
        },
    )
    .unwrap();
    ckt.add_mosfet("mp", MosPolarity::Pmos, out, inp, vdd, pmos())
        .unwrap();
    ckt.add_mosfet("mn", MosPolarity::Nmos, out, inp, GROUND, nmos())
        .unwrap();
    ckt.add_capacitor("cl", out, GROUND, 20e-15).unwrap();
    let opts = SimOptions {
        tstep: 10e-12,
        ..SimOptions::default()
    };
    let res = transient(&ckt, 20e-9, &opts).unwrap();
    let w = res.waveform(out);
    // 20 cycles: 20 falling and 19-20 rising output edges.
    let falls = w.falling_crossings(2.5).len();
    assert!((19..=21).contains(&falls), "got {falls} output falls");
}

/// Trapezoidal and backward Euler agree on a smooth RC curve within the
/// methods' order-of-accuracy difference.
#[test]
fn integration_methods_agree_on_smooth_response() {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource(
        "vin",
        inp,
        GROUND,
        SourceWave::step(0.0, 1.0, 0.1e-9, 0.1e-9),
    )
    .unwrap();
    ckt.add_resistor("r", inp, out, 10e3).unwrap();
    ckt.add_capacitor("c", out, GROUND, 100e-15).unwrap();
    let trap = transient(
        &ckt,
        5e-9,
        &SimOptions {
            tstep: 5e-12,
            method: IntegrationMethod::Trapezoidal,
            ..SimOptions::default()
        },
    )
    .unwrap();
    let be = transient(
        &ckt,
        5e-9,
        &SimOptions {
            tstep: 5e-12,
            method: IntegrationMethod::BackwardEuler,
            ..SimOptions::default()
        },
    )
    .unwrap();
    let diff = trap.waveform(out).max_abs_difference(&be.waveform(out));
    assert!(diff < 5e-3, "methods diverge by {diff}");
}

/// Very stiff circuits (fF capacitor against a mΩ-scale conductance
/// through an ideal source) still integrate stably.
#[test]
fn stiff_time_constants_remain_stable() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource("v", a, GROUND, SourceWave::step(0.0, 1.0, 1e-9, 0.01e-9))
        .unwrap();
    ckt.add_resistor("rsmall", a, b, 0.1).unwrap(); // tau = 0.1 fs
    ckt.add_capacitor("c", b, GROUND, 1e-15).unwrap();
    let res = transient(
        &ckt,
        3e-9,
        &SimOptions {
            tstep: 20e-12,
            ..SimOptions::default()
        },
    )
    .unwrap();
    let w = res.waveform(b);
    // The output tracks the input exactly (tau << tstep) without ringing.
    assert!((w.value_at(3e-9) - 1.0).abs() < 1e-6);
    assert!(w.max_in(0.0, 3e-9) < 1.0 + 1e-6, "no overshoot allowed");
}

/// The engine caps step halving at `tstep_min` and reports
/// non-convergence rather than hanging.
#[test]
fn non_convergence_is_reported_not_hung() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.add_vsource("v", a, GROUND, SourceWave::step(0.0, 5.0, 1e-10, 1e-12))
        .unwrap();
    ckt.add_resistor("r", a, GROUND, 1e3).unwrap();
    // Pathological options: allow almost no Newton iterations.
    let opts = SimOptions {
        tstep: 1e-12,
        tstep_min: 0.5e-12,
        max_newton_iters: 2,
        ..SimOptions::default()
    };
    // Even if this easy circuit converges, the API contract is a clean
    // Result either way.
    let result = transient(&ckt, 1e-9, &opts);
    match result {
        Ok(res) => assert!(res.times().len() > 2),
        Err(SpiceError::NonConvergence { time, .. }) => assert!(time > 0.0),
        Err(other) => panic!("unexpected error {other:?}"),
    }
}
