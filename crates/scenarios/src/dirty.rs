//! Dirty-stimulus decorators: jitter, duty distortion, supply droop.
//!
//! A [`PulseSpec`] describes a *nominal* periodic clock train; a
//! [`DirtyClock`] wraps it with composable impairments — per-cycle
//! timing jitter, duty-cycle distortion and an exponential supply
//! droop on the high level — and renders the result as an explicit
//! [`SourceWave::Pwl`] corner list.
//!
//! # Why render to PWL instead of modulating a PULSE
//!
//! The transient marchers (fixed, adaptive and the lockstep batch
//! kernel) build their breakpoint grid from
//! [`SourceWave::breakpoints`]. A `Pulse` reports the corners of a
//! *perfectly periodic* train; if a source instead perturbed its
//! `value_at` per cycle while keeping the `Pulse` breakpoint list, the
//! jittered edges would fall *between* breakpoints and the adaptive
//! marcher would silently smear them — it only clamps steps onto
//! declared breakpoints. A PWL's breakpoints are exactly its corner
//! times, so rendering every perturbed cycle into explicit corners
//! makes each dirty edge a hard simulator breakpoint by construction.
//! The `breakpoint_grid` regression tests pin this: every value of
//! [`DirtyClock::edge_times`] must appear *exactly* (bitwise, modulo
//! the `tstep_min` dedup) in the transient's time vector on the fixed,
//! adaptive and batched paths.

use clocksense_netlist::SourceWave;

use crate::error::ScenarioError;

/// A nominal periodic pulse train (finite period, unlike the
/// single-shot `ClockPair` stimuli).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseSpec {
    /// Low level (V).
    pub v1: f64,
    /// High level (V).
    pub v2: f64,
    /// Time of the first rising corner (s).
    pub delay: f64,
    /// Rise time (s), > 0.
    pub rise: f64,
    /// Fall time (s), > 0.
    pub fall: f64,
    /// High width (s), > 0.
    pub width: f64,
    /// Cycle period (s), finite.
    pub period: f64,
}

impl PulseSpec {
    /// A 5 V CMOS-ish train: 0→5 V, 1 ns period, 100 ps edges, 300 ps
    /// high, first edge at 200 ps.
    pub fn default_clock() -> PulseSpec {
        PulseSpec {
            v1: 0.0,
            v2: 5.0,
            delay: 0.2e-9,
            rise: 0.1e-9,
            fall: 0.1e-9,
            width: 0.3e-9,
            period: 1.0e-9,
        }
    }
}

/// SplitMix64 finalizer — a tiny, deterministic per-cycle hash so the
/// jitter sequence is reproducible from `(seed, cycle)` alone, with no
/// RNG state threaded through rendering.
fn hash64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform value in [-1, 1] for cycle `k` under `seed`.
fn unit_jitter(seed: u64, k: u64) -> f64 {
    let h = hash64(seed ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    // 53 mantissa bits → uniform in [0, 1), then map to [-1, 1].
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    2.0 * u - 1.0
}

/// A pulse train with composable impairments, rendered to explicit PWL
/// corners so every perturbed edge is a simulator breakpoint.
///
/// # Examples
///
/// ```
/// use clocksense_scenarios::{DirtyClock, PulseSpec};
///
/// let clk = DirtyClock::clean(PulseSpec::default_clock(), 8)
///     .with_jitter(20e-12, 42)
///     .with_duty_error(0.05)
///     .with_droop(0.08, 4.0);
/// let wave = clk.render().unwrap();
/// assert!(wave.is_well_formed());
/// assert_eq!(clk.edge_times().unwrap().len(), 8 * 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirtyClock {
    /// The nominal train being decorated.
    pub base: PulseSpec,
    /// Number of cycles to render (>= 1).
    pub cycles: usize,
    /// Cycle-to-cycle timing jitter amplitude (s): each cycle's start
    /// shifts by a uniform draw in `[-amp, +amp]`.
    pub jitter_amp: f64,
    /// Seed of the deterministic jitter sequence.
    pub jitter_seed: u64,
    /// Duty-cycle distortion: the high width is scaled by
    /// `1 + duty_error` (signed).
    pub duty_error: f64,
    /// Supply-droop depth as a fraction of the swing: cycle `k`'s high
    /// level is `v2 - (v2 - v1) * droop_frac * (1 - exp(-k / tau))`.
    pub droop_frac: f64,
    /// Droop time constant in cycles.
    pub droop_tau: f64,
}

impl DirtyClock {
    /// An unimpaired `cycles`-long render of `base`.
    pub fn clean(base: PulseSpec, cycles: usize) -> DirtyClock {
        DirtyClock {
            base,
            cycles,
            jitter_amp: 0.0,
            jitter_seed: 0,
            duty_error: 0.0,
            droop_frac: 0.0,
            droop_tau: 1.0,
        }
    }

    /// Adds uniform cycle-to-cycle jitter of amplitude `amp` seconds.
    pub fn with_jitter(self, amp: f64, seed: u64) -> DirtyClock {
        DirtyClock {
            jitter_amp: amp,
            jitter_seed: seed,
            ..self
        }
    }

    /// Scales the high width by `1 + frac` (signed distortion).
    pub fn with_duty_error(self, frac: f64) -> DirtyClock {
        DirtyClock {
            duty_error: frac,
            ..self
        }
    }

    /// Droops the high level by up to `frac` of the swing with time
    /// constant `tau_cycles`.
    pub fn with_droop(self, frac: f64, tau_cycles: f64) -> DirtyClock {
        DirtyClock {
            droop_frac: frac,
            droop_tau: tau_cycles,
            ..self
        }
    }

    /// The same train delayed by `dt` — the second phase of a skewed
    /// pair, or a victim copy for sensor sweeps.
    pub fn shifted(self, dt: f64) -> DirtyClock {
        DirtyClock {
            base: PulseSpec {
                delay: self.base.delay + dt,
                ..self.base
            },
            ..self
        }
    }

    /// Last rendered corner plus one edge of settling room.
    pub fn t_stop(&self) -> f64 {
        self.base.delay + self.cycles as f64 * self.base.period
    }

    fn check(&self) -> Result<(), ScenarioError> {
        let b = &self.base;
        for (name, v) in [
            ("rise", b.rise),
            ("fall", b.fall),
            ("width", b.width),
            ("period", b.period),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ScenarioError::InvalidParameter(format!(
                    "pulse {name} must be positive and finite, got {v}"
                )));
            }
        }
        if self.cycles == 0 {
            return Err(ScenarioError::InvalidParameter(
                "dirty clock needs at least one cycle".into(),
            ));
        }
        if !(self.jitter_amp >= 0.0 && self.jitter_amp.is_finite()) {
            return Err(ScenarioError::InvalidParameter(format!(
                "jitter_amp must be non-negative, got {}",
                self.jitter_amp
            )));
        }
        if b.delay - self.jitter_amp < 0.0 {
            return Err(ScenarioError::InvalidParameter(format!(
                "delay {} cannot absorb jitter amplitude {}",
                b.delay, self.jitter_amp
            )));
        }
        if !self.duty_error.is_finite() || self.duty_error <= -1.0 {
            return Err(ScenarioError::InvalidParameter(format!(
                "duty_error must be > -1, got {}",
                self.duty_error
            )));
        }
        if !(0.0..=1.0).contains(&self.droop_frac) {
            return Err(ScenarioError::InvalidParameter(format!(
                "droop_frac must be in [0, 1], got {}",
                self.droop_frac
            )));
        }
        if !(self.droop_tau.is_finite() && self.droop_tau > 0.0) {
            return Err(ScenarioError::InvalidParameter(format!(
                "droop_tau must be positive, got {}",
                self.droop_tau
            )));
        }
        // Worst case the train must stay monotone: the widest cycle
        // plus both jitter excursions has to fit inside one period.
        let w_max = b.width * (1.0 + self.duty_error.abs());
        let slack = b.period - b.rise - w_max - b.fall - 2.0 * self.jitter_amp;
        if slack <= 0.0 {
            return Err(ScenarioError::InvalidParameter(format!(
                "cycle does not fit its period: rise {} + width {} + fall {} \
                 + 2*jitter {} vs period {}",
                b.rise, w_max, b.fall, self.jitter_amp, b.period
            )));
        }
        Ok(())
    }

    /// Per-cycle start-of-rise jitter offset (deterministic in
    /// `(jitter_seed, k)`).
    fn jitter_at(&self, k: usize) -> f64 {
        if self.jitter_amp == 0.0 {
            0.0
        } else {
            self.jitter_amp * unit_jitter(self.jitter_seed, k as u64)
        }
    }

    /// Cycle `k`'s drooped high level.
    fn high_at(&self, k: usize) -> f64 {
        let b = &self.base;
        b.v2 - (b.v2 - b.v1) * self.droop_frac * (1.0 - (-(k as f64) / self.droop_tau).exp())
    }

    /// The four corner times of every rendered cycle, in order. These
    /// are the times that must all be transient breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidParameter`] if the impairments
    /// don't fit the period (see [`DirtyClock::render`]).
    pub fn edge_times(&self) -> Result<Vec<f64>, ScenarioError> {
        self.check()?;
        let b = &self.base;
        let w = b.width * (1.0 + self.duty_error);
        let mut times = Vec::with_capacity(4 * self.cycles);
        for k in 0..self.cycles {
            let s = b.delay + k as f64 * b.period + self.jitter_at(k);
            times.push(s);
            times.push(s + b.rise);
            times.push(s + b.rise + w);
            times.push(s + b.rise + w + b.fall);
        }
        Ok(times)
    }

    /// Renders the impaired train as an explicit PWL corner list.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidParameter`] when a parameter is
    /// out of domain or the impaired cycle no longer fits its period
    /// (edges would cross and the PWL would lose monotonicity).
    pub fn render(&self) -> Result<SourceWave, ScenarioError> {
        let times = self.edge_times()?;
        let b = &self.base;
        let mut points = Vec::with_capacity(2 + times.len());
        if times[0] > 0.0 {
            points.push((0.0, b.v1));
        }
        for (k, corner) in times.chunks_exact(4).enumerate() {
            let high = self.high_at(k);
            points.push((corner[0], b.v1));
            points.push((corner[1], high));
            points.push((corner[2], high));
            points.push((corner[3], b.v1));
        }
        for pair in points.windows(2) {
            if pair[1].0 <= pair[0].0 {
                return Err(ScenarioError::InvalidParameter(format!(
                    "rendered corners not strictly increasing: {} then {}",
                    pair[0].0, pair[1].0
                )));
            }
        }
        Ok(SourceWave::Pwl(points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_render_matches_nominal_pulse_corners() {
        let spec = PulseSpec::default_clock();
        let clk = DirtyClock::clean(spec, 3);
        let times = clk.edge_times().unwrap();
        assert_eq!(times.len(), 12);
        assert_eq!(times[0], spec.delay);
        assert_eq!(times[4], spec.delay + spec.period);
        let wave = clk.render().unwrap();
        assert!(wave.is_well_formed());
        match wave {
            SourceWave::Pwl(points) => assert_eq!(points.len(), 13),
            other => panic!("expected Pwl, got {other:?}"),
        }
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_nonzero() {
        let clk = DirtyClock::clean(PulseSpec::default_clock(), 64).with_jitter(30e-12, 7);
        let a = clk.edge_times().unwrap();
        let b = clk.edge_times().unwrap();
        assert_eq!(a, b);
        let nominal = DirtyClock::clean(clk.base, 64).edge_times().unwrap();
        let mut moved = 0;
        for (t, t0) in a.iter().zip(&nominal) {
            let dt = t - t0;
            assert!(dt.abs() <= 30e-12 + 1e-21, "jitter out of bounds: {dt}");
            if dt != 0.0 {
                moved += 1;
            }
        }
        assert!(moved > a.len() / 2, "jitter barely moved any edges");
        // A different seed gives a different sequence.
        let other = clk.with_jitter(30e-12, 8).edge_times().unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn droop_decays_the_high_level_monotonically() {
        let clk = DirtyClock::clean(PulseSpec::default_clock(), 10).with_droop(0.1, 3.0);
        let highs: Vec<f64> = (0..10).map(|k| clk.high_at(k)).collect();
        assert_eq!(highs[0], 5.0);
        for pair in highs.windows(2) {
            assert!(pair[1] < pair[0]);
        }
        assert!(highs[9] > 5.0 * (1.0 - 0.1));
    }

    #[test]
    fn duty_error_widens_and_narrows() {
        let wide = DirtyClock::clean(PulseSpec::default_clock(), 1).with_duty_error(0.2);
        let narrow = wide.with_duty_error(-0.2);
        let tw = wide.edge_times().unwrap();
        let tn = narrow.edge_times().unwrap();
        assert!((tw[2] - tw[1]) > (tn[2] - tn[1]));
    }

    #[test]
    fn impossible_impairments_are_rejected() {
        let spec = PulseSpec::default_clock();
        // Jitter larger than the delay would put an edge before t=0.
        assert!(DirtyClock::clean(spec, 2)
            .with_jitter(0.3e-9, 1)
            .render()
            .is_err());
        // Duty error that overflows the period.
        assert!(DirtyClock::clean(spec, 2)
            .with_duty_error(2.0)
            .render()
            .is_err());
        assert!(DirtyClock::clean(spec, 0).render().is_err());
    }

    #[test]
    fn shifted_train_moves_every_corner() {
        let clk = DirtyClock::clean(PulseSpec::default_clock(), 4).with_jitter(10e-12, 3);
        let base = clk.edge_times().unwrap();
        let late = clk.shifted(50e-12).edge_times().unwrap();
        for (t, t0) in late.iter().zip(&base) {
            assert!((t - t0 - 50e-12).abs() < 1e-21);
        }
    }
}
