//! Lane-vectorized kernel scaling: SoA lane blocks vs the PR 6 batched
//! kernel, plus scalar-vs-laned verdict agreement.
//!
//! Three experiments back the lane kernel's claims:
//!
//! 1. **Throughput** — K value-variants of the 16x16 clock mesh march
//!    through the cached scalar path and the lane-blocked batch kernel
//!    at K ∈ {16, 64}; both timings keep the best repetition.
//!
//! 2. **Gain over the PR 6 kernel** — the pre-lane batched kernel no
//!    longer exists in this tree, so the archived gain is anchored by a
//!    same-machine cross-measurement: `PR6_BATCHED_PER_SCALAR` is the
//!    PR 6 kernel's batched wall clock on this exact workload divided by
//!    *this* tree's scalar wall clock, both measured back-to-back on one
//!    machine (see the constant's comment for provenance). Multiplying
//!    the constant by the scalar time measured in this run re-expresses
//!    the PR 6 batched time in this machine's units, so
//!    `gain = PR6_BATCHED_PER_SCALAR * scalar_ms / batched_ms` tracks
//!    the kernel-vs-kernel improvement without rebuilding old code.
//!    Outside fast mode the K = 16 gain must reach the tentpole's 3x
//!    floor (asserted).
//!
//! 3. **Verdict agreement** — the full 81-fault sensor universe is
//!    classified scalar and laned; every per-fault verdict must agree
//!    (`lane_scaling.verdict_mismatches` stays 0, asserted).
//!
//! Waveforms are cross-checked scalar-vs-laned to 1e-9 at every K. The
//! `batch.lane_*` occupancy counters of the laned runs land in the
//! `--report` snapshot; the CI gate checks their coherence
//! (`check_report.py --lanes`).

use std::time::Instant;

use clocksense_bench::{clock_mesh_netlist, fast_mode, print_header, scaled, threads_arg, Table};
use clocksense_core::{ClockPair, SensorBuilder, Technology};
use clocksense_faults::{run_campaign, sensor_fault_universe, CampaignConfig};
use clocksense_netlist::{Circuit, Device};
use clocksense_spice::{transient_batch, transient_cached, SimOptions, SolverKind, SymbolicCache};

/// PR 6 batched wall clock / this tree's scalar wall clock, mesh 16x16
/// at K = 16 (t_stop 1 ns, tstep 2 ps), both best-of-25/7 on the same
/// machine on 2026-08-07: the PR 6 kernel (repo @ 898048f, built in a
/// worktree with this exact harness) ran 134.47 ms batched and
/// 1594.05 ms scalar; this tree's scalar path ran 578.11 ms on the same
/// workload back-to-back. The constant deliberately normalises by the
/// *current* scalar (not PR 6's): this PR also sped the scalar path up,
/// and the current scalar is what a fresh run of this binary can
/// measure, so the ratio transfers across machines as long as scalar
/// and laned throughput scale together.
const PR6_BATCHED_PER_SCALAR: f64 = 134.47 / 578.11;

/// A value variant of the mesh: driver resistance and the last load
/// capacitor retuned per variant — the couple-of-devices footprint a
/// campaign item actually has (same shape as `batch_scaling`).
fn value_variant(base: &Circuit, k: usize) -> Circuit {
    let mut ckt = base.clone();
    let f = 1.0 + 0.03 * (k + 1) as f64;
    let rdrv = ckt.find_device("rdrv").expect("driver exists");
    if let Device::Resistor(r) = &mut ckt.device_mut(rdrv).expect("live id").device {
        r.ohms *= f;
    }
    let mut leaf_cap = None;
    for (id, entry) in ckt.devices() {
        if matches!(entry.device, Device::Capacitor(_)) {
            leaf_cap = Some(id);
        }
    }
    let leaf_cap = leaf_cap.expect("net has capacitors");
    if let Device::Capacitor(c) = &mut ckt.device_mut(leaf_cap).expect("live id").device {
        c.farads *= f;
    }
    ckt
}

fn main() {
    let bench = clocksense_bench::report::start("lane_scaling");
    let tele = &bench.tele;
    let t_stop = 1e-9;
    let opts = SimOptions {
        solver: SolverKind::Sparse,
        tstep: 2e-12,
        ..SimOptions::default()
    };

    let mesh_side = scaled(16, 8);
    let (mesh, corner) = clock_mesh_netlist(mesh_side);
    tele.counter("mesh_nodes")
        .add((mesh_side * mesh_side) as u64);

    print_header(&format!(
        "Lane-blocked kernel vs cached scalar ({mesh_side}x{mesh_side} mesh, value variants)"
    ));
    let mut table = Table::new(&[
        "K",
        "scalar [ms]",
        "laned [ms]",
        "speedup",
        "gain vs PR6",
        "max |dv|",
    ]);
    let reps = scaled(5, 2);
    let widths: &[usize] = if fast_mode() { &[16] } else { &[16, 64] };
    let mut gain_violation = None;
    for &width in widths {
        let variants: Vec<Circuit> = (0..width).map(|k| value_variant(&mesh, k)).collect();

        // Alternate the two paths and keep each one's best repetition,
        // so a scheduling hiccup in one rep cannot masquerade as an
        // algorithmic difference. The laned run is an order of magnitude
        // shorter than the scalar one, so a single laned attempt per rep
        // would give it far fewer chances to land in a quiet scheduling
        // window; the inner loop evens out the best-of opportunities per
        // unit of wall clock.
        let laned_inner = 4;
        let mut scalar_ms = f64::INFINITY;
        let mut laned_ms = f64::INFINITY;
        let mut scalar = Vec::new();
        let mut laned = Vec::new();
        for _ in 0..reps {
            let scalar_cache = SymbolicCache::new();
            let start = Instant::now();
            scalar = variants
                .iter()
                .map(|ckt| transient_cached(ckt, t_stop, &opts, &scalar_cache).expect("scalar run"))
                .collect();
            scalar_ms = scalar_ms.min(start.elapsed().as_secs_f64() * 1e3);

            let lane_opts = SimOptions {
                batch: width,
                ..opts.clone()
            };
            for _ in 0..laned_inner {
                let lane_cache = SymbolicCache::new();
                let start = Instant::now();
                laned = transient_batch(&variants, t_stop, &lane_opts, &lane_cache);
                laned_ms = laned_ms.min(start.elapsed().as_secs_f64() * 1e3);
            }
        }

        let mut max_dv = 0.0f64;
        for (s, b) in scalar.iter().zip(&laned) {
            let b = b.as_ref().expect("laned run");
            max_dv = max_dv.max(s.waveform(corner).max_abs_difference(&b.waveform(corner)));
        }
        assert!(
            max_dv < 1e-9,
            "laned deviates from scalar by {max_dv} at K={width}"
        );

        let speedup = scalar_ms / laned_ms;
        let gain = PR6_BATCHED_PER_SCALAR * scalar_ms / laned_ms;
        // Wall-clock ratios are machine-dependent; keeping them out of
        // the fast-mode report keeps the CI smoke baseline comparison
        // on deterministic work counters only.
        if !fast_mode() {
            tele.counter(&format!("speedup_milli_k{width}"))
                .add((speedup * 1e3) as u64);
            tele.counter(&format!("gain_vs_pr6_milli_k{width}"))
                .add((gain * 1e3) as u64);
        }
        table.row(&[
            format!("{width}"),
            format!("{scalar_ms:.1}"),
            format!("{laned_ms:.1}"),
            format!("{speedup:.2}x"),
            format!("{gain:.2}x"),
            format!("{max_dv:.1e}"),
        ]);
        // Fast-mode nets are too small for the lane wins to clear the
        // fixed costs, so the floor is only enforced on the full
        // workload, at the width the tentpole names.
        if !fast_mode() && width == 16 && gain < 3.0 {
            gain_violation.get_or_insert(format!(
                "lane kernel must be >= 3x over the PR 6 kernel at K={width}, got {gain:.2}x"
            ));
        }
    }
    println!("{}", table.render());
    if let Some(msg) = gain_violation {
        panic!("{msg}");
    }

    print_header("Verdict agreement on the sensor fault universe (scalar vs laned)");
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech)
        .load_capacitance(160e-15)
        .build()
        .expect("valid sensor");
    let mut faults = sensor_fault_universe(&sensor, 100.0);
    if fast_mode() {
        faults.truncate(12);
    }
    let scalar_cfg = CampaignConfig {
        threads: threads_arg(),
        sim: SimOptions {
            solver: SolverKind::Sparse,
            tstep: 2e-12,
            ..SimOptions::default()
        },
        ..CampaignConfig::new(ClockPair::single_shot(tech.vdd, 0.2e-9))
    };
    let laned_cfg = CampaignConfig {
        sim: SimOptions {
            batch: 16,
            ..scalar_cfg.sim.clone()
        },
        ..scalar_cfg.clone()
    };
    let scalar_result = run_campaign(&sensor, &faults, &scalar_cfg).expect("scalar campaign");
    let laned_result = run_campaign(&sensor, &faults, &laned_cfg).expect("laned campaign");
    let mut mismatches = 0u64;
    for (s, b) in scalar_result.records().iter().zip(laned_result.records()) {
        if s.outcome != b.outcome || s.masks_skew != b.masks_skew {
            println!(
                "MISMATCH {}: scalar {:?}/{:?} vs laned {:?}/{:?}",
                s.fault, s.outcome, s.masks_skew, b.outcome, b.masks_skew
            );
            mismatches += 1;
        }
    }
    tele.counter("verdicts_total").add(faults.len() as u64);
    tele.counter("verdict_mismatches").add(mismatches);
    println!(
        "{} faults classified, {} verdict mismatches",
        faults.len(),
        mismatches
    );
    assert_eq!(mismatches, 0, "laned and scalar campaigns must agree");

    bench.finish();
}
