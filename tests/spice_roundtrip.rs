//! SPICE deck round-trip: exporting a circuit and re-importing it must
//! preserve its electrical behaviour, not just its structure.

use clocksense::core::{ClockPair, SensorBuilder, Technology};
use clocksense::netlist::{from_spice, to_spice};
use clocksense::spice::{transient, SimOptions};

#[test]
fn sensor_testbench_survives_the_deck() {
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech)
        .load_capacitance(160e-15)
        .build()
        .expect("valid sensor");
    let clocks = ClockPair::single_shot(tech.vdd, 0.2e-9).with_skew(0.3e-9);
    let bench = sensor.testbench(&clocks).expect("bench builds");

    let deck = to_spice(&bench, "sensor testbench");
    assert!(deck.contains("m_a"));
    assert!(deck.contains(".model"));
    let back = from_spice(&deck).expect("deck parses");
    assert_eq!(back.device_count(), bench.device_count());

    let opts = SimOptions {
        tstep: 2e-12,
        ..SimOptions::default()
    };
    let stop = clocks.sim_stop_time();
    let a = transient(&bench, stop, &opts).expect("original simulates");
    let b = transient(&back, stop, &opts).expect("round-trip simulates");
    for node in ["y1", "y2", "mid_a", "top_b"] {
        let wa = a.waveform_named(node).expect("node exists");
        let wb = b.waveform_named(node).expect("node exists");
        let diff = wa.max_abs_difference(&wb);
        assert!(
            diff < 2e-3,
            "node {node} diverges by {diff} V after the round trip"
        );
    }
}

#[test]
fn deck_is_human_readable() {
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech).build().expect("valid sensor");
    let deck = to_spice(sensor.circuit(), "bare sensor");
    // Spot-check the dialect: title, element cards, model cards, .end.
    let lines: Vec<&str> = deck.lines().collect();
    assert!(lines[0].starts_with("* "));
    assert!(lines.last().unwrap().eq_ignore_ascii_case(".end"));
    assert_eq!(
        lines.iter().filter(|l| l.starts_with("m_")).count(),
        10,
        "ten labelled transistors"
    );
    assert_eq!(lines.iter().filter(|l| l.starts_with(".model")).count(), 10);
}
