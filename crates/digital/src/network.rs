//! Gate-network construction.

use std::error::Error;
use std::fmt;

/// Identifier of a net in a [`GateNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) usize);

impl NetId {
    /// Dense index of the net.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a combinational gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GateId(pub(crate) usize);

/// Identifier of a flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DffId(pub(crate) usize);

/// Supported combinational gate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Logical AND (≥ 2 inputs).
    And,
    /// Logical OR (≥ 2 inputs).
    Or,
    /// Inverted AND (≥ 2 inputs).
    Nand,
    /// Inverted OR (≥ 2 inputs).
    Nor,
    /// Exclusive OR (≥ 2 inputs, parity).
    Xor,
    /// Inverted XOR (≥ 2 inputs).
    Xnor,
    /// Inverter (exactly 1 input).
    Not,
    /// Buffer / delay element (exactly 1 input).
    Buf,
}

impl GateKind {
    /// Evaluates the function over three-valued inputs (`None` = X).
    ///
    /// Dominant values short-circuit X: `AND` with any `0` input is `0`
    /// regardless of X inputs, `OR` with any `1` is `1`; parity of any X
    /// is X.
    pub fn eval(self, inputs: &[Option<bool>]) -> Option<bool> {
        match self {
            GateKind::Not | GateKind::Buf => {
                let v = inputs[0];
                if self == GateKind::Not {
                    v.map(|b| !b)
                } else {
                    v
                }
            }
            GateKind::And | GateKind::Nand => {
                let out = if inputs.contains(&Some(false)) {
                    Some(false)
                } else if inputs.iter().all(|v| *v == Some(true)) {
                    Some(true)
                } else {
                    None
                };
                if self == GateKind::Nand {
                    out.map(|b| !b)
                } else {
                    out
                }
            }
            GateKind::Or | GateKind::Nor => {
                let out = if inputs.contains(&Some(true)) {
                    Some(true)
                } else if inputs.iter().all(|v| *v == Some(false)) {
                    Some(false)
                } else {
                    None
                };
                if self == GateKind::Nor {
                    out.map(|b| !b)
                } else {
                    out
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                let mut acc = false;
                for v in inputs {
                    match v {
                        Some(b) => acc ^= b,
                        None => return None,
                    }
                }
                Some(if self == GateKind::Xnor { !acc } else { acc })
            }
        }
    }

    fn arity_ok(self, n: usize) -> bool {
        match self {
            GateKind::Not | GateKind::Buf => n == 1,
            _ => n >= 2,
        }
    }
}

/// An input stimulus: an initial value plus timed transitions.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    pub(crate) initial: Option<bool>,
    pub(crate) edges: Vec<(f64, bool)>,
}

impl Schedule {
    /// A constant input.
    pub fn constant(value: bool) -> Self {
        Schedule {
            initial: Some(value),
            edges: Vec::new(),
        }
    }

    /// An input starting at `initial` with the given `(time, value)`
    /// transitions (must be in increasing time order).
    ///
    /// # Panics
    ///
    /// Panics if the edge times are not strictly increasing and positive.
    pub fn from_edges(initial: bool, edges: &[(f64, bool)]) -> Self {
        assert!(
            edges.windows(2).all(|w| w[0].0 < w[1].0),
            "edges must be strictly increasing in time"
        );
        assert!(
            edges.iter().all(|&(t, _)| t > 0.0),
            "edges must be after t = 0"
        );
        Schedule {
            initial: Some(initial),
            edges: edges.to_vec(),
        }
    }

    /// A clock: low until `start`, then alternating every `half_period`
    /// for `cycles` full cycles.
    ///
    /// # Panics
    ///
    /// Panics on non-positive timing parameters.
    pub fn clock(start: f64, half_period: f64, cycles: usize) -> Self {
        assert!(start > 0.0 && half_period > 0.0, "timing must be positive");
        let mut edges = Vec::with_capacity(2 * cycles);
        for k in 0..cycles {
            let t = start + 2.0 * half_period * k as f64;
            edges.push((t, true));
            edges.push((t + half_period, false));
        }
        Schedule {
            initial: Some(false),
            edges,
        }
    }
}

/// Errors in network construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DigitalError {
    /// A gate got the wrong number of inputs.
    BadArity {
        /// The offending gate function.
        kind: String,
        /// The number of inputs supplied.
        got: usize,
    },
    /// A referenced net does not exist.
    UnknownNet(usize),
    /// A delay or timing parameter is out of domain.
    InvalidTiming(String),
}

impl fmt::Display for DigitalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DigitalError::BadArity { kind, got } => {
                write!(f, "gate {kind} cannot take {got} inputs")
            }
            DigitalError::UnknownNet(i) => write!(f, "unknown net {i}"),
            DigitalError::InvalidTiming(detail) => write!(f, "invalid timing: {detail}"),
        }
    }
}

impl Error for DigitalError {}

#[derive(Debug, Clone)]
pub(crate) struct Gate {
    pub kind: GateKind,
    pub inputs: Vec<NetId>,
    pub output: NetId,
    pub delay: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Dff {
    pub d: NetId,
    pub clk: NetId,
    pub q: NetId,
    pub clk_to_q: f64,
    pub setup: f64,
    pub init: Option<bool>,
}

/// A delay-annotated gate-level network: primary inputs with schedules,
/// combinational gates, and edge-triggered flip-flops.
///
/// # Examples
///
/// A divide-by-two counter (DFF with inverted feedback):
///
/// ```
/// use clocksense_digital::{GateKind, GateNetwork, Schedule};
///
/// # fn main() -> Result<(), clocksense_digital::DigitalError> {
/// let mut net = GateNetwork::new();
/// let clk = net.input("clk", Schedule::clock(1e-9, 2e-9, 8));
/// let d = net.placeholder("d");
/// let q = net.dff(d, clk, 0.4e-9, 0.2e-9, Some(false))?;
/// let qb = net.gate(GateKind::Not, &[q], 0.2e-9)?;
/// net.connect(d, qb)?; // close the loop: d = !q
/// let run = net.simulate(40e-9)?;
/// // q toggles at half the clock rate: 8 rising clock edges -> 4 q pulses.
/// assert_eq!(run.signal(q).edges_to(true).len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GateNetwork {
    pub(crate) net_names: Vec<String>,
    pub(crate) inputs: Vec<(NetId, Schedule)>,
    pub(crate) gates: Vec<Gate>,
    pub(crate) dffs: Vec<Dff>,
    /// Alias map: `connect` re-points a placeholder net onto a driver.
    pub(crate) aliases: Vec<Option<NetId>>,
}

impl GateNetwork {
    /// An empty network.
    pub fn new() -> Self {
        GateNetwork::default()
    }

    fn new_net(&mut self, name: &str) -> NetId {
        let id = NetId(self.net_names.len());
        self.net_names.push(name.to_string());
        self.aliases.push(None);
        id
    }

    /// Declares a primary input driven by `schedule`.
    pub fn input(&mut self, name: &str, schedule: Schedule) -> NetId {
        let id = self.new_net(name);
        self.inputs.push((id, schedule));
        id
    }

    /// Declares a yet-undriven net, to be wired later with
    /// [`GateNetwork::connect`] — the idiom for feedback loops.
    pub fn placeholder(&mut self, name: &str) -> NetId {
        self.new_net(name)
    }

    /// Makes `placeholder` an alias of `driver`.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError::UnknownNet`] for dangling ids.
    pub fn connect(&mut self, placeholder: NetId, driver: NetId) -> Result<(), DigitalError> {
        if placeholder.0 >= self.aliases.len() {
            return Err(DigitalError::UnknownNet(placeholder.0));
        }
        if driver.0 >= self.aliases.len() {
            return Err(DigitalError::UnknownNet(driver.0));
        }
        self.aliases[placeholder.0] = Some(driver);
        Ok(())
    }

    /// Resolves aliases to the driving net.
    pub(crate) fn resolve(&self, net: NetId) -> NetId {
        let mut cur = net;
        let mut hops = 0;
        while let Some(next) = self.aliases[cur.0] {
            cur = next;
            hops += 1;
            assert!(hops <= self.aliases.len(), "alias cycle");
        }
        cur
    }

    /// Adds a combinational gate; returns its output net.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError::BadArity`] for a wrong input count,
    /// [`DigitalError::UnknownNet`] for dangling inputs and
    /// [`DigitalError::InvalidTiming`] for a non-positive delay.
    pub fn gate(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        delay: f64,
    ) -> Result<NetId, DigitalError> {
        if !kind.arity_ok(inputs.len()) {
            return Err(DigitalError::BadArity {
                kind: format!("{kind:?}"),
                got: inputs.len(),
            });
        }
        if !(delay.is_finite() && delay > 0.0) {
            return Err(DigitalError::InvalidTiming(format!(
                "gate delay must be positive, got {delay}"
            )));
        }
        for input in inputs {
            if input.0 >= self.net_names.len() {
                return Err(DigitalError::UnknownNet(input.0));
            }
        }
        let output = self.new_net(&format!("g{}_out", self.gates.len()));
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
            delay,
        });
        Ok(output)
    }

    /// Adds an edge-triggered flip-flop sampling `d` on the rising edge of
    /// `clk`; returns the `q` net. `init` is the power-up state (`None`
    /// for unknown).
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError::UnknownNet`] for dangling nets and
    /// [`DigitalError::InvalidTiming`] for negative timing parameters.
    pub fn dff(
        &mut self,
        d: NetId,
        clk: NetId,
        clk_to_q: f64,
        setup: f64,
        init: Option<bool>,
    ) -> Result<NetId, DigitalError> {
        for net in [d, clk] {
            if net.0 >= self.net_names.len() {
                return Err(DigitalError::UnknownNet(net.0));
            }
        }
        if !(clk_to_q.is_finite() && clk_to_q > 0.0 && setup.is_finite() && setup >= 0.0) {
            return Err(DigitalError::InvalidTiming(
                "clk_to_q must be positive and setup non-negative".to_string(),
            ));
        }
        let q = self.new_net(&format!("ff{}_q", self.dffs.len()));
        self.dffs.push(Dff {
            d,
            clk,
            q,
            clk_to_q,
            setup,
            init,
        });
        Ok(q)
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// The name a net was declared with.
    ///
    /// # Panics
    ///
    /// Panics for a dangling id.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_eval_truth_tables() {
        use GateKind::*;
        let t = Some(true);
        let f = Some(false);
        assert_eq!(And.eval(&[t, t]), t);
        assert_eq!(And.eval(&[t, f]), f);
        assert_eq!(Nand.eval(&[t, t]), f);
        assert_eq!(Or.eval(&[f, f]), f);
        assert_eq!(Nor.eval(&[f, f]), t);
        assert_eq!(Xor.eval(&[t, t]), f);
        assert_eq!(Xor.eval(&[t, f, t]), f);
        assert_eq!(Xnor.eval(&[t, f]), f);
        assert_eq!(Not.eval(&[t]), f);
        assert_eq!(Buf.eval(&[f]), f);
    }

    #[test]
    fn x_propagation_respects_dominance() {
        use GateKind::*;
        let t = Some(true);
        let f = Some(false);
        let x = None;
        assert_eq!(And.eval(&[f, x]), f, "0 dominates AND");
        assert_eq!(And.eval(&[t, x]), x);
        assert_eq!(Or.eval(&[t, x]), t, "1 dominates OR");
        assert_eq!(Or.eval(&[f, x]), x);
        assert_eq!(Xor.eval(&[t, x]), x, "parity of X is X");
        assert_eq!(Not.eval(&[x]), x);
    }

    #[test]
    fn arity_is_validated() {
        let mut net = GateNetwork::new();
        let a = net.input("a", Schedule::constant(false));
        assert!(matches!(
            net.gate(GateKind::Not, &[a, a], 1e-9),
            Err(DigitalError::BadArity { .. })
        ));
        assert!(matches!(
            net.gate(GateKind::And, &[a], 1e-9),
            Err(DigitalError::BadArity { .. })
        ));
        assert!(matches!(
            net.gate(GateKind::And, &[a, a], 0.0),
            Err(DigitalError::InvalidTiming(_))
        ));
    }

    #[test]
    fn schedules_validate() {
        let s = Schedule::clock(1e-9, 2e-9, 2);
        assert_eq!(s.edges.len(), 4);
        assert_eq!(s.initial, Some(false));
        let s = Schedule::from_edges(true, &[(1e-9, false), (2e-9, true)]);
        assert_eq!(s.edges.len(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_edges_panic() {
        Schedule::from_edges(false, &[(2e-9, true), (1e-9, false)]);
    }

    #[test]
    fn aliases_resolve() {
        let mut net = GateNetwork::new();
        let a = net.input("a", Schedule::constant(true));
        let p = net.placeholder("p");
        net.connect(p, a).unwrap();
        assert_eq!(net.resolve(p), a);
        assert_eq!(net.resolve(a), a);
        assert!(net.connect(NetId(99), a).is_err());
    }
}
