//! The event-driven simulation engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::network::{DffId, DigitalError, GateNetwork, NetId};
use crate::signal::{from_ticks, to_ticks, DigitalSignal};

/// A recorded setup-time violation: the data input of a flip-flop toggled
/// inside the setup window of a sampling edge, so the sampled value is
/// suspect (the simulator still samples the instantaneous value, as real
/// latches usually resolve to one side — but flags it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingViolation {
    /// The violating flip-flop.
    pub dff: DffId,
    /// Time of the sampling clock edge (s).
    pub at: f64,
}

/// Result of a gate-level simulation: one [`DigitalSignal`] per net plus
/// any timing violations.
#[derive(Debug, Clone)]
pub struct SimulationRun {
    signals: Vec<DigitalSignal>,
    violations: Vec<TimingViolation>,
    aliases: Vec<Option<NetId>>,
}

impl SimulationRun {
    /// The signal history of a net (aliases resolve to their drivers).
    pub fn signal(&self, net: NetId) -> &DigitalSignal {
        &self.signals[self.resolve(net).0]
    }

    /// The value of a net at time `t`.
    pub fn value_at(&self, net: NetId, t: f64) -> Option<bool> {
        self.signal(net).value_at(t)
    }

    /// All recorded setup violations, in time order.
    pub fn violations(&self) -> &[TimingViolation] {
        &self.violations
    }

    fn resolve(&self, net: NetId) -> NetId {
        let mut cur = net;
        while let Some(next) = self.aliases[cur.0] {
            cur = next;
        }
        cur
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    ticks: u64,
    seq: u64,
    net: usize,
    value: Option<bool>,
}

impl GateNetwork {
    /// Runs the network for `t_stop` seconds of simulated time.
    ///
    /// Gates use transport-delay semantics (glitches propagate); inputs
    /// follow their schedules; flip-flops sample on rising clock edges
    /// (an edge out of the unknown state does not trigger) and report
    /// setup violations.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError::InvalidTiming`] for a non-positive
    /// `t_stop`.
    pub fn simulate(&self, t_stop: f64) -> Result<SimulationRun, DigitalError> {
        if !(t_stop.is_finite() && t_stop > 0.0) {
            return Err(DigitalError::InvalidTiming(format!(
                "t_stop must be positive, got {t_stop}"
            )));
        }
        let n = self.net_count();
        let stop_ticks = to_ticks(t_stop);

        // Fanout tables over resolved nets.
        let mut gate_fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (gi, gate) in self.gates.iter().enumerate() {
            for &input in &gate.inputs {
                let r = self.resolve(input).0;
                if !gate_fanout[r].contains(&gi) {
                    gate_fanout[r].push(gi);
                }
            }
        }
        let mut clk_fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (fi, ff) in self.dffs.iter().enumerate() {
            clk_fanout[self.resolve(ff.clk).0].push(fi);
        }

        // Initial values.
        let mut values: Vec<Option<bool>> = vec![None; n];
        for (net, schedule) in &self.inputs {
            values[self.resolve(*net).0] = schedule.initial;
        }
        for ff in &self.dffs {
            values[self.resolve(ff.q).0] = ff.init;
        }
        let mut signals: Vec<DigitalSignal> =
            values.iter().map(|&v| DigitalSignal::new(v)).collect();

        let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0u64;
        let push = |queue: &mut BinaryHeap<Reverse<Event>>,
                    seq: &mut u64,
                    ticks: u64,
                    net: usize,
                    value: Option<bool>| {
            *seq += 1;
            queue.push(Reverse(Event {
                ticks,
                seq: *seq,
                net,
                value,
            }));
        };

        // Scheduled input edges.
        for (net, schedule) in &self.inputs {
            let r = self.resolve(*net).0;
            for &(t, v) in &schedule.edges {
                let ticks = to_ticks(t);
                if ticks <= stop_ticks {
                    push(&mut queue, &mut seq, ticks, r, Some(v));
                }
            }
        }
        // Initial combinational settle: evaluate every gate once at t=0+delay.
        for gate in &self.gates {
            let ins: Vec<Option<bool>> = gate
                .inputs
                .iter()
                .map(|&i| values[self.resolve(i).0])
                .collect();
            let out = gate.kind.eval(&ins);
            push(
                &mut queue,
                &mut seq,
                to_ticks(gate.delay),
                self.resolve(gate.output).0,
                out,
            );
        }

        let mut violations = Vec::new();
        while let Some(Reverse(event)) = queue.pop() {
            if event.ticks > stop_ticks {
                break;
            }
            let old = values[event.net];
            if old == event.value {
                continue;
            }
            values[event.net] = event.value;
            let now = from_ticks(event.ticks);
            signals[event.net].push(now, event.value);

            for &gi in &gate_fanout[event.net] {
                let gate = &self.gates[gi];
                let ins: Vec<Option<bool>> = gate
                    .inputs
                    .iter()
                    .map(|&i| values[self.resolve(i).0])
                    .collect();
                let out = gate.kind.eval(&ins);
                push(
                    &mut queue,
                    &mut seq,
                    event.ticks + to_ticks(gate.delay),
                    self.resolve(gate.output).0,
                    out,
                );
            }
            // Rising clock edges trigger sampling.
            if old == Some(false) && event.value == Some(true) {
                for &fi in &clk_fanout[event.net] {
                    let ff = &self.dffs[fi];
                    let d_net = self.resolve(ff.d).0;
                    let sampled = values[d_net];
                    // Setup check: did d move inside the window?
                    let unstable = signals[d_net]
                        .transitions()
                        .any(|(t, _)| t > now - ff.setup && t <= now);
                    if unstable {
                        violations.push(TimingViolation {
                            dff: DffId(fi),
                            at: now,
                        });
                    }
                    push(
                        &mut queue,
                        &mut seq,
                        event.ticks + to_ticks(ff.clk_to_q),
                        self.resolve(ff.q).0,
                        sampled,
                    );
                }
            }
        }

        Ok(SimulationRun {
            signals,
            violations,
            aliases: self.aliases.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{GateKind, Schedule};

    #[test]
    fn gate_delays_accumulate() {
        let mut net = GateNetwork::new();
        let a = net.input("a", Schedule::from_edges(false, &[(1e-9, true)]));
        let x = net.gate(GateKind::Buf, &[a], 0.5e-9).unwrap();
        let y = net.gate(GateKind::Buf, &[x], 0.5e-9).unwrap();
        let run = net.simulate(5e-9).unwrap();
        assert_eq!(run.value_at(y, 1.4e-9), Some(false));
        assert_eq!(run.value_at(y, 2.1e-9), Some(true));
        let edges = run.signal(y).edges_to(true);
        assert_eq!(edges.len(), 1);
        assert!((edges[0] - 2e-9).abs() < 1e-14);
    }

    #[test]
    fn glitches_propagate_with_transport_delay() {
        // a XOR a' with unequal path delays produces a decode glitch.
        let mut net = GateNetwork::new();
        let a = net.input("a", Schedule::from_edges(false, &[(1e-9, true)]));
        let slow = net.gate(GateKind::Buf, &[a], 1.0e-9).unwrap();
        let x = net.gate(GateKind::Xor, &[a, slow], 0.2e-9).unwrap();
        let run = net.simulate(5e-9).unwrap();
        // x pulses high from 1.2 ns (a changed) to 2.2 ns (slow caught up).
        assert_eq!(run.value_at(x, 1.5e-9), Some(true));
        assert_eq!(run.value_at(x, 3e-9), Some(false));
        assert_eq!(run.signal(x).edges_to(true).len(), 1);
    }

    #[test]
    fn shift_register_moves_one_stage_per_edge() {
        let mut net = GateNetwork::new();
        let clk = net.input("clk", Schedule::clock(1e-9, 1e-9, 6));
        let d = net.input(
            "d",
            Schedule::from_edges(false, &[(0.2e-9, true), (1.6e-9, false)]),
        );
        let q1 = net.dff(d, clk, 0.3e-9, 0.1e-9, Some(false)).unwrap();
        let q2 = net.dff(q1, clk, 0.3e-9, 0.1e-9, Some(false)).unwrap();
        let q3 = net.dff(q2, clk, 0.3e-9, 0.1e-9, Some(false)).unwrap();
        let run = net.simulate(12e-9).unwrap();
        // Edges at 1, 3, 5 ns: the single 1 marches down the chain.
        assert_eq!(run.value_at(q1, 2.0e-9), Some(true));
        assert_eq!(run.value_at(q2, 2.0e-9), Some(false));
        assert_eq!(run.value_at(q2, 4.0e-9), Some(true));
        assert_eq!(run.value_at(q3, 6.0e-9), Some(true));
        assert_eq!(run.value_at(q1, 4.0e-9), Some(false), "the 1 moved on");
        assert!(run.violations().is_empty());
    }

    #[test]
    fn setup_violation_is_reported() {
        let mut net = GateNetwork::new();
        let clk = net.input("clk", Schedule::clock(1e-9, 1e-9, 2));
        // Data toggles 50 ps before the first edge: inside a 200 ps setup.
        let d = net.input("d", Schedule::from_edges(false, &[(0.95e-9, true)]));
        let _q = net.dff(d, clk, 0.3e-9, 0.2e-9, Some(false)).unwrap();
        let run = net.simulate(6e-9).unwrap();
        assert_eq!(run.violations().len(), 1);
        assert!((run.violations()[0].at - 1e-9).abs() < 1e-14);
    }

    #[test]
    fn unknown_initial_state_washes_out() {
        let mut net = GateNetwork::new();
        let clk = net.input("clk", Schedule::clock(1e-9, 1e-9, 4));
        let d = net.input("d", Schedule::constant(true));
        // Uninitialised flip-flop: q starts X, becomes known after the
        // first sampling edge.
        let q = net.dff(d, clk, 0.3e-9, 0.1e-9, None).unwrap();
        let run = net.simulate(10e-9).unwrap();
        assert_eq!(run.value_at(q, 0.5e-9), None);
        assert_eq!(run.value_at(q, 2e-9), Some(true));
    }

    #[test]
    fn rejects_bad_t_stop() {
        let net = GateNetwork::new();
        assert!(net.simulate(0.0).is_err());
        assert!(net.simulate(f64::NAN).is_err());
    }
}
