//! Deterministic, seed-driven fault injection for the clocksense stack.
//!
//! PRs 5 and 7 built the survival machinery — panic isolation, deadline
//! cancellation, the retry/quarantine ladder, atomically-flushed resume
//! journals — but nothing adversarially exercised it. This crate is the
//! adversary: a [`ChaosPlan`] describes a small set of injections
//! (worker panics, forced deadline expiry, a killed journal flush,
//! journal corruption on load, a NaN-poisoned SIMD lane), and hook
//! functions compiled into the production seams fire them when a plan
//! is armed.
//!
//! # Determinism contract
//!
//! A plan is data: the same seed always samples the same injections
//! ([`ChaosPlan::sample`] is pure SplitMix64), and every hook consumes
//! plan state through monotone per-site counters, so a given plan fires
//! at the same site visit every run. With a single-worker executor the
//! *identity* of the victim item is reproducible too; with several
//! workers the interleaving chooses the victim, but exactly one
//! injection still fires per planned entry — the invariants the torture
//! harness checks (one final verdict per fault, byte-identical resume,
//! no cross-lane contamination) are interleaving-independent.
//!
//! # Zero cost when disarmed
//!
//! Every hook starts with one relaxed atomic load of a global flag and
//! returns immediately when no plan is armed. Production binaries never
//! arm a plan, so the clean-path goldens are unaffected byte-for-byte.
//!
//! # Accounting
//!
//! Arming records `chaos.injections_planned`; every fire records
//! `chaos.injections_fired`; [`disarm`] records the remainder as
//! `chaos.injections_suppressed` (a planned injection whose site was
//! never reached — e.g. a flush kill scheduled past the last flush).
//! `planned == fired + suppressed` is a CI coherence gate
//! (`check_report.py --chaos`).
//!
//! # Examples
//!
//! ```
//! use clocksense_chaos::{ChaosPlan, Injection};
//!
//! let plan = ChaosPlan::new(42).with(Injection::DeadlineExpiry { after_polls: 3 });
//! let guard = plan.arm_scoped();
//! assert!(!clocksense_chaos::deadline_poll_hook()); // poll 0
//! assert!(!clocksense_chaos::deadline_poll_hook()); // poll 1
//! assert!(!clocksense_chaos::deadline_poll_hook()); // poll 2
//! assert!(clocksense_chaos::deadline_poll_hook()); // poll 3: forced expiry
//! let summary = guard.disarm();
//! assert_eq!((summary.planned, summary.fired), (1, 1));
//! ```

#![deny(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// SplitMix64: the tiny, statistically solid generator used for every
/// seed-derived decision in this crate (and by the scenario crate's
/// dirty-stimulus jitter). One `u64` of state, no allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from `0..bound` (`0` for a zero bound).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift range reduction: bias below 2^-40 for the
        // campaign-sized bounds used here, and branch-free.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// One planned fault injection. Fractional positions are carried in
/// per-mille (`0..=1000`) so plans stay `Eq`/hashable and trivially
/// serialisable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Panic inside the executor worker when it claims its `item`-th
    /// work unit (0-based, counted across every `Executor` run while
    /// armed). Lands in the per-item `catch_unwind`, so it degrades to
    /// a `JobPanic` record exactly like a real library bug would.
    WorkerPanic {
        /// Hook-call ordinal at which to panic.
        item: u64,
    },
    /// Force `Deadline::expired` to return `true` from its
    /// `after_polls`-th poll onward (sticky, like a real expiry).
    DeadlineExpiry {
        /// Number of polls to let through before the forced expiry.
        after_polls: u64,
    },
    /// Kill the `flush`-th journal flush: the temp file receives only
    /// the first `keep_milli`/1000 of its bytes and the atomic rename
    /// never happens — the on-disk journal stays at its previous state,
    /// exactly as a `SIGKILL` between write and rename would leave it.
    FlushKill {
        /// Flush ordinal to kill (0-based, counted while armed).
        flush: u64,
        /// Per-mille of the temp file's bytes written before the kill.
        keep_milli: u16,
    },
    /// Truncate the journal text to `keep_milli`/1000 of its bytes at
    /// the next load — a torn or half-synced file.
    JournalTruncate {
        /// Per-mille of the journal bytes that survive.
        keep_milli: u16,
    },
    /// Flip one bit (XOR `0x02`) of the journal byte nearest to
    /// `pos_milli`/1000 of the text at the next load — interior media
    /// corruption rather than a torn tail.
    JournalBitFlip {
        /// Per-mille position of the corrupted byte.
        pos_milli: u16,
    },
    /// Overwrite one gathered device value of lane `lane` in the first
    /// SoA lane block packed while armed (`lane` is clamped to the
    /// block's real width, so the poison always lands on a live lane).
    LanePoison {
        /// Lane index to poison.
        lane: u8,
        /// `true` poisons with `+inf`, `false` with NaN.
        infinity: bool,
    },
}

/// A reproducible set of [`Injection`]s derived from (or attached to) a
/// seed. Build one explicitly with [`ChaosPlan::with`], or sample a
/// random single-injection plan with [`ChaosPlan::sample`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed this plan was derived from (recorded for diagnostics;
    /// [`ChaosPlan::with`] does not consume it).
    pub seed: u64,
    /// The injections to fire, in no particular order.
    pub injections: Vec<Injection>,
}

impl ChaosPlan {
    /// An empty plan carrying `seed`.
    pub fn new(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            injections: Vec::new(),
        }
    }

    /// Adds one injection.
    #[must_use]
    pub fn with(mut self, injection: Injection) -> ChaosPlan {
        self.injections.push(injection);
        self
    }

    /// Samples a random single-injection plan: the seed picks the site
    /// and every site parameter. The same seed always yields the same
    /// plan.
    pub fn sample(seed: u64) -> ChaosPlan {
        let mut rng = SplitMix64::new(seed);
        let injection = match rng.next_below(6) {
            0 => Injection::WorkerPanic {
                item: rng.next_below(32),
            },
            1 => Injection::DeadlineExpiry {
                after_polls: rng.next_below(10_000),
            },
            2 => Injection::FlushKill {
                flush: rng.next_below(24),
                keep_milli: rng.next_below(1001) as u16,
            },
            3 => Injection::JournalTruncate {
                keep_milli: rng.next_below(1001) as u16,
            },
            4 => Injection::JournalBitFlip {
                pos_milli: rng.next_below(1001) as u16,
            },
            _ => Injection::LanePoison {
                lane: rng.next_below(8) as u8,
                infinity: rng.next_below(2) == 1,
            },
        };
        ChaosPlan::new(seed).with(injection)
    }

    /// Arms this plan process-wide and returns a guard that disarms it
    /// on drop. See [`arm`] for the (single-plan) arming semantics.
    #[must_use]
    pub fn arm_scoped(self) -> ArmedGuard {
        arm(self);
        ArmedGuard { disarmed: false }
    }
}

/// What happened to an armed plan, returned by [`disarm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosSummary {
    /// Injections the plan carried.
    pub planned: u64,
    /// Injections whose site was reached and which actually fired.
    pub fired: u64,
}

impl ChaosSummary {
    /// Planned injections whose site was never reached.
    pub fn suppressed(&self) -> u64 {
        self.planned - self.fired
    }
}

/// Disarms the active plan when dropped — keeps a panicking test from
/// leaving chaos armed for every test that follows it.
#[derive(Debug)]
pub struct ArmedGuard {
    disarmed: bool,
}

impl ArmedGuard {
    /// Disarms now and returns the plan's [`ChaosSummary`].
    pub fn disarm(mut self) -> ChaosSummary {
        self.disarmed = true;
        disarm()
    }
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        if !self.disarmed {
            disarm();
        }
    }
}

struct Active {
    plan: ChaosPlan,
    fired: Vec<AtomicBool>,
    worker_items: AtomicU64,
    deadline_polls: AtomicU64,
    flushes: AtomicU64,
    lane_blocks: AtomicU64,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static Mutex<Option<Arc<Active>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Active>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn current() -> Option<Arc<Active>> {
    slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

fn counter(name: &str) -> clocksense_telemetry::Counter {
    clocksense_telemetry::global().scope("chaos").counter(name)
}

/// Arms `plan` process-wide, replacing (and implicitly disarming) any
/// previously armed plan. Chaos state is global: callers that arm
/// concurrently from several threads get *a* plan, not their own —
/// the torture harness runs schedules sequentially for exactly this
/// reason.
pub fn arm(plan: ChaosPlan) {
    let fired = plan
        .injections
        .iter()
        .map(|_| AtomicBool::new(false))
        .collect();
    counter("injections_planned").add(plan.injections.len() as u64);
    let active = Arc::new(Active {
        plan,
        fired,
        worker_items: AtomicU64::new(0),
        deadline_polls: AtomicU64::new(0),
        flushes: AtomicU64::new(0),
        lane_blocks: AtomicU64::new(0),
    });
    *slot().lock().unwrap_or_else(PoisonError::into_inner) = Some(active);
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms the active plan (a no-op summary if none was armed) and
/// records the never-reached injections as suppressed.
pub fn disarm() -> ChaosSummary {
    ARMED.store(false, Ordering::SeqCst);
    let active = slot().lock().unwrap_or_else(PoisonError::into_inner).take();
    let Some(active) = active else {
        return ChaosSummary::default();
    };
    let planned = active.plan.injections.len() as u64;
    let fired = active
        .fired
        .iter()
        .filter(|f| f.load(Ordering::Relaxed))
        .count() as u64;
    counter("injections_suppressed").add(planned - fired);
    ChaosSummary { planned, fired }
}

/// Whether a plan is currently armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

fn mark_fired(active: &Active, index: usize) -> bool {
    let first = !active.fired[index].swap(true, Ordering::Relaxed);
    if first {
        counter("injections_fired").incr();
    }
    first
}

/// Executor hook: called once per claimed work item, *inside* the
/// per-item `catch_unwind`. Panics when the armed plan schedules a
/// [`Injection::WorkerPanic`] at this hook-call ordinal.
#[inline]
pub fn worker_item_hook(index: usize) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    worker_item_slow(index);
}

#[cold]
fn worker_item_slow(index: usize) {
    let Some(active) = current() else { return };
    let n = active.worker_items.fetch_add(1, Ordering::Relaxed);
    for (k, injection) in active.plan.injections.iter().enumerate() {
        if let Injection::WorkerPanic { item } = injection {
            if n == *item && mark_fired(&active, k) {
                panic!("chaos: injected worker panic at work unit {n} (item index {index})");
            }
        }
    }
}

/// Deadline hook: called from every `Deadline::expired` poll. Returns
/// `true` (sticky) once the armed plan's poll budget is exhausted.
#[inline]
pub fn deadline_poll_hook() -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    deadline_poll_slow()
}

#[cold]
fn deadline_poll_slow() -> bool {
    let Some(active) = current() else {
        return false;
    };
    let n = active.deadline_polls.fetch_add(1, Ordering::Relaxed);
    let mut expired = false;
    for (k, injection) in active.plan.injections.iter().enumerate() {
        if let Injection::DeadlineExpiry { after_polls } = injection {
            if n >= *after_polls {
                mark_fired(&active, k);
                expired = true;
            }
        }
    }
    expired
}

/// Journal-flush hook: given the byte length of the text about to be
/// flushed, returns `Some(keep_bytes)` when this flush must be killed —
/// the caller writes only that prefix to the temp file, skips the
/// rename, and fails as if the process had died mid-flush.
#[inline]
pub fn flush_kill_hook(len: usize) -> Option<usize> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    flush_kill_slow(len)
}

#[cold]
fn flush_kill_slow(len: usize) -> Option<usize> {
    let active = current()?;
    let n = active.flushes.fetch_add(1, Ordering::Relaxed);
    for (k, injection) in active.plan.injections.iter().enumerate() {
        if let Injection::FlushKill { flush, keep_milli } = injection {
            if n == *flush && mark_fired(&active, k) {
                return Some(len * usize::from(*keep_milli) / 1000);
            }
        }
    }
    None
}

/// Journal-load hook: corrupts `text` in place (truncation or an
/// interior bit flip) when the armed plan schedules it. Returns `true`
/// if the text was modified. The bit flip XORs `0x02` into the nearest
/// ASCII byte, which keeps the text valid UTF-8 and never fabricates a
/// newline, so the corruption stays *inside* a record — the case the
/// lenient loader must skip and count rather than trip over.
#[inline]
pub fn journal_load_hook(text: &mut String) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    journal_load_slow(text)
}

#[cold]
fn journal_load_slow(text: &mut String) -> bool {
    let Some(active) = current() else {
        return false;
    };
    let mut changed = false;
    for (k, injection) in active.plan.injections.iter().enumerate() {
        match injection {
            Injection::JournalTruncate { keep_milli } => {
                if text.is_empty() || !mark_fired(&active, k) {
                    continue;
                }
                let mut keep = text.len() * usize::from(*keep_milli) / 1000;
                while keep < text.len() && !text.is_char_boundary(keep) {
                    keep += 1;
                }
                text.truncate(keep);
                changed = true;
            }
            Injection::JournalBitFlip { pos_milli } => {
                if text.is_empty() || !mark_fired(&active, k) {
                    continue;
                }
                let mut bytes = std::mem::take(text).into_bytes();
                let start = (bytes.len() * usize::from(*pos_milli) / 1000).min(bytes.len() - 1);
                // Walk forward (wrapping) to an ASCII byte so the flip
                // cannot break UTF-8 validity.
                let pos = (0..bytes.len())
                    .map(|d| (start + d) % bytes.len())
                    .find(|&p| bytes[p].is_ascii());
                if let Some(p) = pos {
                    bytes[p] ^= 0x02;
                    changed = true;
                }
                *text = String::from_utf8(bytes).unwrap_or_default();
            }
            _ => {}
        }
    }
    changed
}

/// Lane-block hook: when the armed plan schedules a
/// [`Injection::LanePoison`], the *first* lane block packed while armed
/// gets `Some((lane, poison))` — the caller overwrites one gathered
/// device value of that lane. `lane` is clamped to `width - 1` so the
/// poison always lands on a live lane, never on ride-along padding.
#[inline]
pub fn lane_poison_hook(width: usize) -> Option<(usize, f64)> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    lane_poison_slow(width)
}

#[cold]
fn lane_poison_slow(width: usize) -> Option<(usize, f64)> {
    let active = current()?;
    let n = active.lane_blocks.fetch_add(1, Ordering::Relaxed);
    for (k, injection) in active.plan.injections.iter().enumerate() {
        if let Injection::LanePoison { lane, infinity } = injection {
            if n == 0 && width > 0 && mark_fired(&active, k) {
                let value = if *infinity { f64::INFINITY } else { f64::NAN };
                return Some((usize::from(*lane).min(width - 1), value));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    // Chaos state is process-global; the tests in this module serialise
    // on one mutex so `cargo test`'s parallel runner cannot interleave
    // their arm/disarm windows.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(13) < 13);
        }
        assert_eq!(SplitMix64::new(1).next_below(0), 0);
    }

    #[test]
    fn sample_is_pure_in_the_seed() {
        for seed in 0..64 {
            assert_eq!(ChaosPlan::sample(seed), ChaosPlan::sample(seed));
            assert_eq!(ChaosPlan::sample(seed).injections.len(), 1);
        }
        // The sampler reaches every site across a modest seed range.
        let mut sites = [false; 6];
        for seed in 0..256 {
            let site = match ChaosPlan::sample(seed).injections[0] {
                Injection::WorkerPanic { .. } => 0,
                Injection::DeadlineExpiry { .. } => 1,
                Injection::FlushKill { .. } => 2,
                Injection::JournalTruncate { .. } => 3,
                Injection::JournalBitFlip { .. } => 4,
                Injection::LanePoison { .. } => 5,
            };
            sites[site] = true;
        }
        assert!(sites.iter().all(|&s| s), "sampler missed a site: {sites:?}");
    }

    #[test]
    fn hooks_are_inert_when_disarmed() {
        let _gate = lock();
        assert!(!is_armed());
        worker_item_hook(3);
        assert!(!deadline_poll_hook());
        assert_eq!(flush_kill_hook(100), None);
        let mut text = "abc".to_string();
        assert!(!journal_load_hook(&mut text));
        assert_eq!(text, "abc");
        assert_eq!(lane_poison_hook(8), None);
        assert_eq!(disarm(), ChaosSummary::default());
    }

    #[test]
    fn worker_panic_fires_exactly_once_at_its_ordinal() {
        let _gate = lock();
        let guard = ChaosPlan::new(1)
            .with(Injection::WorkerPanic { item: 2 })
            .arm_scoped();
        worker_item_hook(10); // ordinal 0
        worker_item_hook(11); // ordinal 1
        let caught = std::panic::catch_unwind(|| worker_item_hook(12));
        assert!(caught.is_err(), "ordinal 2 must panic");
        worker_item_hook(13); // ordinal 3: the injection is spent
        let summary = guard.disarm();
        assert_eq!(
            (summary.planned, summary.fired, summary.suppressed()),
            (1, 1, 0)
        );
    }

    #[test]
    fn deadline_expiry_is_sticky() {
        let _gate = lock();
        let guard = ChaosPlan::new(2)
            .with(Injection::DeadlineExpiry { after_polls: 1 })
            .arm_scoped();
        assert!(!deadline_poll_hook());
        assert!(deadline_poll_hook());
        assert!(deadline_poll_hook());
        assert_eq!(guard.disarm().fired, 1);
    }

    #[test]
    fn flush_kill_hits_its_flush_ordinal_only() {
        let _gate = lock();
        let guard = ChaosPlan::new(3)
            .with(Injection::FlushKill {
                flush: 1,
                keep_milli: 500,
            })
            .arm_scoped();
        assert_eq!(flush_kill_hook(100), None);
        assert_eq!(flush_kill_hook(100), Some(50));
        assert_eq!(flush_kill_hook(100), None);
        assert_eq!(guard.disarm().fired, 1);
    }

    #[test]
    fn unreached_injections_count_as_suppressed() {
        let _gate = lock();
        let guard = ChaosPlan::new(4)
            .with(Injection::FlushKill {
                flush: 99,
                keep_milli: 0,
            })
            .arm_scoped();
        assert_eq!(flush_kill_hook(10), None);
        let summary = guard.disarm();
        assert_eq!((summary.fired, summary.suppressed()), (0, 1));
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        let _gate = lock();
        let guard = ChaosPlan::new(5)
            .with(Injection::JournalTruncate { keep_milli: 500 })
            .arm_scoped();
        let mut text = "héllo wörld".to_string();
        assert!(journal_load_hook(&mut text));
        assert!(text.len() < "héllo wörld".len());
        assert!(std::str::from_utf8(text.as_bytes()).is_ok());
        guard.disarm();
    }

    #[test]
    fn bit_flip_changes_one_ascii_byte_and_stays_utf8() {
        let _gate = lock();
        let guard = ChaosPlan::new(6)
            .with(Injection::JournalBitFlip { pos_milli: 400 })
            .arm_scoped();
        let original = "clocksense-journal/v1\nabc\tdef\n".to_string();
        let mut text = original.clone();
        assert!(journal_load_hook(&mut text));
        assert_eq!(text.len(), original.len());
        let diffs = original
            .bytes()
            .zip(text.bytes())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
        // Fires once: a second load sees the text untouched.
        let mut again = original.clone();
        assert!(!journal_load_hook(&mut again));
        assert_eq!(again, original);
        guard.disarm();
    }

    #[test]
    fn lane_poison_clamps_to_live_width_and_fires_once() {
        let _gate = lock();
        let guard = ChaosPlan::new(7)
            .with(Injection::LanePoison {
                lane: 6,
                infinity: false,
            })
            .arm_scoped();
        let (lane, value) = lane_poison_hook(3).expect("first block is poisoned");
        assert_eq!(lane, 2, "lane must clamp to width - 1");
        assert!(value.is_nan());
        assert_eq!(lane_poison_hook(8), None, "later blocks stay clean");
        assert_eq!(guard.disarm().fired, 1);
    }

    #[test]
    fn arm_scoped_guard_disarms_on_drop() {
        let _gate = lock();
        {
            let _guard = ChaosPlan::new(8)
                .with(Injection::DeadlineExpiry { after_polls: 0 })
                .arm_scoped();
            assert!(is_armed());
        }
        assert!(!is_armed());
        assert!(!deadline_poll_hook());
    }
}
