//! Scenario: why clock faults need their own testing scheme — the paper's
//! central motivating argument, end to end.
//!
//! "A clock distribution fault resulting in one or more flip-flops'
//! delayed sampling cannot be immediately assimilated to delay faults
//! inside the combinational part of the circuit, because a delayed
//! flip-flop's response may be masked by its delayed sampling."
//!
//! We build a launch–capture path clocked from two branches of an H-tree,
//! skew the capture branch with a resistive open, and show:
//!   1. a combinational delay fault that a delay test would catch on the
//!      healthy clock is *masked* by the skewed capture clock;
//!   2. the same skew silently destroys the short-path hold margin;
//!   3. the skew sensor across the two branches flags the root cause.
//!
//! Run with: `cargo run --release --example delay_fault_masking`

use clocksense::checker::{ErrorIndicator, FlipFlop, TimingPath};
use clocksense::clocktree::{HTree, TreeFault, WireParasitics};
use clocksense::core::{SensorBuilder, Technology};
use clocksense::netlist::SourceWave;
use clocksense::spice::{transient, SimOptions};
use clocksense::wave::Waveform;

fn to_pwl(w: &Waveform) -> SourceWave {
    let r = w.resample(160);
    SourceWave::Pwl(
        r.times()
            .iter()
            .copied()
            .zip(r.values().iter().copied())
            .collect(),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos12();

    // Clock distribution: launch FF on sink 0, capture FF on sink 1.
    let htree = HTree::new(2, 3e-3, WireParasitics::metal2());
    let mut tree = htree.to_rc_tree(50e-15);
    let sinks = htree.sink_nodes().to_vec();
    // The clock fault: a resistive open retarding the capture branch.
    TreeFault::ResistiveOpen {
        node: sinks[1],
        extra_ohms: 10e3,
    }
    .apply(&mut tree)?;

    let clock = SourceWave::Pulse {
        v1: 0.0,
        v2: tech.vdd,
        delay: 1e-9,
        rise: 0.2e-9,
        fall: 0.2e-9,
        width: 2.4e-9,
        period: 5e-9,
    };
    let waves = tree.transient(&clock, 150.0, 12e-9, 2e-12, &[])?;
    let launch_clk = waves.waveform(sinks[0]);
    let capture_clk = waves.waveform(sinks[1]);
    let v_mid = tech.vdd / 2.0;
    let launch_edges = launch_clk.rising_crossings(v_mid);
    let capture_edges = capture_clk.rising_crossings(v_mid);
    let skew = capture_edges[0] - launch_edges[0];
    println!(
        "capture clock arrives {:.0} ps late (the clock fault)",
        skew * 1e12
    );

    // The timing path under test: 3.5 ns long path, 0.2 ns short path,
    // 5 ns cycle.
    let path = TimingPath {
        launch: FlipFlop::cmos12(),
        capture: FlipFlop::cmos12(),
        comb_max: 3.5e-9,
        comb_min: 0.2e-9,
    };
    let t_launch = launch_edges[0];
    let t_capture_next = capture_edges[1]; // next-cycle capture
    let t_capture_same = capture_edges[0]; // same-cycle (hold check)
    let t_capture_healthy = launch_edges[1]; // where the edge should be

    // 1. A 1 ns combinational delay fault.
    let extra = 1.0e-9;
    let faulty = TimingPath {
        comb_max: path.comb_max + extra,
        ..path
    };
    let visible_on_healthy = faulty.setup_slack(t_launch, t_capture_healthy) < 0.0;
    let visible_on_skewed = faulty.setup_slack(t_launch, t_capture_next) < 0.0;
    println!(
        "1 ns combinational delay fault: delay test {} on the healthy clock, \
         but {} under the skewed capture clock",
        if visible_on_healthy {
            "FAILS (fault caught)"
        } else {
            "passes"
        },
        if visible_on_skewed {
            "fails"
        } else {
            "PASSES (fault masked)"
        },
    );
    assert!(visible_on_healthy && !visible_on_skewed);

    // 2. The hold hazard the skew creates on the short path.
    let hold_healthy = path.hold_slack(t_launch, t_launch);
    let hold_skewed = path.hold_slack(t_launch, t_capture_same);
    println!(
        "short-path hold slack: {:.0} ps healthy -> {:.0} ps under skew{}",
        hold_healthy * 1e12,
        hold_skewed * 1e12,
        if hold_skewed < 0.0 {
            "  (VIOLATED)"
        } else {
            ""
        }
    );
    assert!(hold_healthy > 0.0 && hold_skewed < 0.0);

    // 3. The sensing circuit across the two branches flags the root cause.
    let sensor = SensorBuilder::new(tech).load_capacitance(80e-15).build()?;
    let bench = sensor.testbench_with_waves(to_pwl(&launch_clk), to_pwl(&capture_clk))?;
    let result = transient(
        &bench,
        10e-9,
        &SimOptions {
            tstep: 2e-12,
            ..SimOptions::default()
        },
    )?;
    let (y1, y2) = sensor.outputs();
    let mut indicator = ErrorIndicator::new(tech.logic_threshold(), 0.5e-9);
    indicator.observe_waveforms(&result.waveform(y1), &result.waveform(y2));
    println!(
        "skew sensor across the two branches: {}",
        match indicator.latched() {
            Some(_) => "ERROR INDICATION LATCHED - the clock fault is caught directly",
            None => "quiet",
        }
    );
    assert!(indicator.latched().is_some());
    println!("\nconclusion: logic delay tests miss what the sensing scheme catches");
    Ok(())
}
