//! Transient analysis.

use std::sync::Arc;

use clocksense_netlist::{Circuit, NodeId};
use clocksense_wave::Waveform;

use crate::engine::{MnaSystem, NewtonWorkspace};
use crate::error::{RescueStage, SpiceError};
use crate::options::{IntegrationMethod, SimOptions, TimestepControl};
use crate::sparse::SymbolicCache;

/// Result of a transient analysis: every node voltage and every
/// voltage-source branch current, sampled at each accepted time point.
///
/// The time axis is stored once behind an [`Arc`] and shared with every
/// [`Waveform`] handed out, so probing many nodes of one result — the
/// campaign and Monte-Carlo hot loops — copies only the per-node values,
/// never the grid.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Arc<[f64]>,
    node_values: Vec<Vec<f64>>,
    branch_values: Vec<Vec<f64>>,
    node_names: Vec<String>,
    source_names: Vec<String>,
}

impl TranResult {
    /// The accepted time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Voltage waveform at `node` (ground yields the all-zero waveform).
    ///
    /// # Panics
    ///
    /// Panics if `node` was not part of the analysed circuit.
    pub fn waveform(&self, node: NodeId) -> Waveform {
        assert!(
            node.index() < self.node_values.len(),
            "node {node} not in this analysis"
        );
        Waveform::with_shared_times(
            Arc::clone(&self.times),
            self.node_values[node.index()].clone(),
        )
    }

    /// Voltage waveform looked up by node name.
    pub fn waveform_named(&self, name: &str) -> Option<Waveform> {
        let idx = self.node_names.iter().position(|n| n == name)?;
        Some(Waveform::with_shared_times(
            Arc::clone(&self.times),
            self.node_values[idx].clone(),
        ))
    }

    /// Branch-current waveform of the named voltage source (current flowing
    /// `plus` → `minus` through the source; supplies deliver negative
    /// values — see [`iddq`](crate::iddq) for the DC sign convention).
    pub fn source_current(&self, name: &str) -> Option<Waveform> {
        let idx = self.source_names.iter().position(|n| n == name)?;
        Some(Waveform::with_shared_times(
            Arc::clone(&self.times),
            self.branch_values[idx].clone(),
        ))
    }

    /// Names of all recorded nodes, in node-id order.
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// Assembles a result from raw sampled series — the construction path
    /// of the batched kernel (`crate::batch`), which accumulates its own
    /// lockstep samples and shares one time axis across the whole batch.
    pub(crate) fn from_parts(
        times: Arc<[f64]>,
        node_values: Vec<Vec<f64>>,
        branch_values: Vec<Vec<f64>>,
        node_names: Vec<String>,
        source_names: Vec<String>,
    ) -> TranResult {
        TranResult {
            times,
            node_values,
            branch_values,
            node_names,
            source_names,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CapState {
    /// Branch voltage at the previous accepted point.
    u: f64,
    /// Branch current at the previous accepted point.
    i: f64,
}

/// Reusable buffers for the transient loop: the Newton workspace (MNA
/// matrix, RHS, LU permutation, solution vectors) plus the capacitor
/// companion and state buffers. Every integration attempt reuses these,
/// so the hot path performs no heap allocation after the first step.
#[derive(Debug, Clone)]
struct TranWorkspace {
    newton: NewtonWorkspace,
    /// `(geq, ieq)` companion per capacitor for the current attempt.
    companions: Vec<(f64, f64)>,
    /// Capacitor states implied by the attempt's solution.
    new_states: Vec<CapState>,
}

impl TranWorkspace {
    fn new(sys: &MnaSystem, opts: &SimOptions, cache: Option<&SymbolicCache>) -> Self {
        TranWorkspace {
            newton: NewtonWorkspace::for_system(sys, opts.solver, cache),
            companions: Vec::with_capacity(sys.capacitors.len()),
            new_states: Vec::with_capacity(sys.capacitors.len()),
        }
    }

    /// One integration attempt over `[t_next - h, t_next]`, with `x` as
    /// the Newton starting point (the last accepted solution, or a
    /// predictor extrapolation) and `gmin` as the channel/diagonal
    /// conductance of this solve (the target `opts.gmin` everywhere
    /// except on the rungs of a rescue gmin ramp). On success the
    /// solution is left in `self.newton.x` and the updated capacitor
    /// states in `self.new_states`; the caller swaps them in on accept.
    /// Returns the Newton iteration count of the solve.
    #[allow(clippy::too_many_arguments)]
    fn try_step(
        &mut self,
        sys: &MnaSystem,
        x: &[f64],
        states: &[CapState],
        t_next: f64,
        h: f64,
        backward_euler: bool,
        gmin: f64,
        opts: &SimOptions,
    ) -> Result<u64, SpiceError> {
        // Companion model per capacitor: i = geq * u - ieq.
        self.companions.clear();
        self.companions
            .extend(sys.capacitors.iter().zip(states).map(|(c, st)| {
                if backward_euler {
                    let geq = c.farads / h;
                    (geq, geq * st.u)
                } else {
                    let geq = 2.0 * c.farads / h;
                    (geq, geq * st.u + st.i)
                }
            }));

        let companions = &self.companions;
        let iters = sys.newton_solve_ws(
            t_next,
            x,
            opts,
            gmin,
            1.0,
            |m, rhs, plan| {
                for (slots, &(geq, ieq)) in plan.caps.iter().zip(companions) {
                    slots.stamp(m, rhs, geq, ieq);
                }
            },
            &mut self.newton,
        )?;

        let x_new = &self.newton.x;
        self.new_states.clear();
        self.new_states
            .extend(
                sys.capacitors
                    .iter()
                    .zip(&self.companions)
                    .map(|(cap, &(geq, ieq))| {
                        let u = MnaSystem::voltage(x_new, cap.a) - MnaSystem::voltage(x_new, cap.b);
                        CapState {
                            u,
                            i: geq * u - ieq,
                        }
                    }),
            );
        Ok(iters)
    }
}

/// What the rescue ladder made of a timepoint the halving loop gave up on.
enum RescueOutcome {
    /// Some stage converged at the target `opts.gmin`: the solution is in
    /// `ws.newton.x` / `ws.new_states`, ready for the usual accept swap.
    /// `used_be` reports whether the accepted solve integrated with
    /// backward Euler (the caller then keeps BE for the rest of the
    /// window — mixing methods mid-window would corrupt the trapezoidal
    /// state history).
    Rescued { used_be: bool },
    /// Every stage failed; the error carries enriched diagnostics.
    Failed(SpiceError),
}

/// The convergence rescue ladder, tried only after bounded step halving
/// has exhausted (`h` is already the smallest step the caller may take):
///
/// 1. a **local gmin ramp** at the failing timepoint — re-solve at a
///    heavily padded diagonal (1e-3 S) and walk it geometrically back
///    down to `opts.gmin`, warm-starting every rung from the previous
///    rung's solution;
/// 2. a **trapezoidal → backward-Euler downgrade** for this step (L-stable,
///    no oscillatory companion terms), first plain, then combined with
///    the gmin ramp.
///
/// Rescue solves also run with a 4x-lifted Newton iteration cap: step
/// halving has already exhausted, so this path is cold and can afford
/// the iterations a budget-starved hot loop cannot — the same `itl`
/// relaxation production simulators apply to their recovery passes.
///
/// Only a solve at the target `opts.gmin` is ever accepted, so a rescued
/// point satisfies exactly the same system as an ordinary one — the
/// ladder changes which starting points Newton gets (and how long it may
/// walk), never the answer. Callers must not invoke this on a clean
/// path: every entry records `rescue.*` telemetry.
#[allow(clippy::too_many_arguments)]
fn rescue_step(
    sys: &MnaSystem,
    ws: &mut TranWorkspace,
    x: &[f64],
    states: &[CapState],
    t_next: f64,
    h: f64,
    already_be: bool,
    opts: &SimOptions,
    base_err: SpiceError,
) -> RescueOutcome {
    let rm = crate::metrics::rescue_metrics();
    let mut stages = vec![RescueStage::StepHalving];
    let mut gmin_reached = f64::NAN;
    let mut last_err = base_err;

    // Cold path: the clone buys every rescue solve the lifted budget.
    let lifted = SimOptions {
        max_newton_iters: opts.max_newton_iters.saturating_mul(4),
        ..opts.clone()
    };
    let opts = &lifted;

    // Attempts in ladder order: a gmin ramp with the current integration
    // method, then (for trapezoidal runs) a plain backward-Euler retry
    // and a backward-Euler gmin ramp. `(stage, use_be, with_ramp)`.
    let mut attempts = vec![(RescueStage::GminRamp, already_be, true)];
    if !already_be {
        attempts.push((RescueStage::BackwardEulerDowngrade, true, false));
        attempts.push((RescueStage::BackwardEulerDowngrade, true, true));
    }

    for (stage, be, with_ramp) in attempts {
        if !stages.contains(&stage) {
            stages.push(stage);
        }
        let result = if with_ramp {
            rm.gmin_ramps.incr();
            gmin_ramp(sys, ws, x, states, t_next, h, be, opts, &mut gmin_reached)
        } else {
            rm.be_downgrades.incr();
            ws.try_step(sys, x, states, t_next, h, be, opts.gmin, opts)
                .map(|_| ())
        };
        match result {
            Ok(()) => {
                rm.steps_rescued.incr();
                return RescueOutcome::Rescued { used_be: be };
            }
            Err(e @ SpiceError::NonConvergence { .. }) => last_err = e,
            // Anything else (deadline, singular matrix) aborts the ladder.
            Err(e) => return RescueOutcome::Failed(e),
        }
    }

    rm.ladder_failures.incr();
    // Enrich whichever diagnostics the final attempt produced with the
    // full ladder trace.
    if let SpiceError::NonConvergence {
        diagnostics: Some(d),
        ..
    } = &mut last_err
    {
        d.stages_tried = stages;
        if gmin_reached.is_finite() {
            d.gmin_reached = gmin_reached;
        }
    }
    RescueOutcome::Failed(last_err)
}

/// One gmin-ramp pass: solve at `GMIN_START`, then at geometrically
/// decreasing gmin down to `opts.gmin`, each rung warm-started from the
/// previous rung's solution. Succeeds only if the final, target-gmin rung
/// converges (its solution is then in `ws.newton`); any rung failure
/// fails the pass.
#[allow(clippy::too_many_arguments)]
fn gmin_ramp(
    sys: &MnaSystem,
    ws: &mut TranWorkspace,
    x: &[f64],
    states: &[CapState],
    t_next: f64,
    h: f64,
    be: bool,
    opts: &SimOptions,
    gmin_reached: &mut f64,
) -> Result<(), SpiceError> {
    const GMIN_START: f64 = 1e-3;
    let rm = crate::metrics::rescue_metrics();
    let mut rungs: Vec<f64> = Vec::new();
    let mut g = GMIN_START;
    while g > opts.gmin * 10.0 {
        rungs.push(g);
        g /= 10.0;
    }
    rungs.push(opts.gmin);

    // Cold path: one warm-start buffer allocation per ramp is fine.
    let mut x_start: Vec<f64> = x.to_vec();
    for (i, &rung) in rungs.iter().enumerate() {
        ws.try_step(sys, &x_start, states, t_next, h, be, rung, opts)?;
        rm.gmin_ramp_rungs.incr();
        if rung < *gmin_reached || gmin_reached.is_nan() {
            *gmin_reached = rung;
        }
        if i + 1 < rungs.len() {
            x_start.copy_from_slice(&ws.newton.x);
        }
    }
    Ok(())
}

/// Runs a transient analysis of `circuit` from `t = 0` to `t_stop`.
///
/// The initial condition is the DC operating point with sources at their
/// `t = 0` values. Integration uses the method in [`SimOptions::method`];
/// with the default trapezoidal rule, the step immediately after `t = 0`
/// and after every source breakpoint is taken with backward Euler to damp
/// start-up ringing. Source breakpoints are always hit exactly, and steps
/// that fail to converge are recursively halved down to
/// [`SimOptions::tstep_min`].
///
/// The time grid is governed by [`SimOptions::timestep`]: the default
/// [`Fixed`](crate::TimestepControl::Fixed) mode marches
/// [`tstep`](SimOptions::tstep)-sized windows and is the bit-exact golden
/// reference, while
/// [`Adaptive`](crate::TimestepControl::Adaptive) re-sizes every step from
/// a local-truncation-error estimate — same breakpoints, far fewer steps
/// over quiescent stretches.
///
/// # Errors
///
/// Propagates [`SpiceError::Netlist`] / [`SpiceError::SingularMatrix`] from
/// system assembly and returns [`SpiceError::NonConvergence`] — carrying
/// [`SimDiagnostics`](crate::SimDiagnostics) — if a step cannot be
/// completed even at the minimum step size and (unless
/// [`SimOptions::rescue`] is disabled) after the convergence rescue
/// ladder has been climbed. Returns [`SpiceError::DeadlineExceeded`] as
/// soon as the token in [`SimOptions::deadline`] expires or is
/// cancelled.
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn transient(
    circuit: &Circuit,
    t_stop: f64,
    opts: &SimOptions,
) -> Result<TranResult, SpiceError> {
    transient_with(circuit, t_stop, opts, None)
}

/// [`transient`] with a shared [`SymbolicCache`]: when `opts.solver` is
/// [`Sparse`](crate::SolverKind::Sparse), the one-time symbolic analysis
/// (fill-reducing ordering + fill pattern) of the circuit's topology is
/// looked up in `cache` and computed only on a miss. Batched workloads
/// simulating many same-topology variants — fault campaigns, Monte-Carlo
/// scatter — share a cache so every variant after the first pays for
/// numeric refactorisations only.
pub fn transient_cached(
    circuit: &Circuit,
    t_stop: f64,
    opts: &SimOptions,
    cache: &SymbolicCache,
) -> Result<TranResult, SpiceError> {
    transient_with(circuit, t_stop, opts, Some(cache))
}

fn transient_with(
    circuit: &Circuit,
    t_stop: f64,
    opts: &SimOptions,
    cache: Option<&SymbolicCache>,
) -> Result<TranResult, SpiceError> {
    opts.validate()?;
    // Even without a caller-provided cache, the DC initial condition and
    // the transient loop share one symbolic analysis of the topology.
    let local_cache;
    let cache = match cache {
        Some(c) => Some(c),
        None => {
            local_cache = SymbolicCache::new();
            Some(&local_cache)
        }
    };
    if !(t_stop.is_finite() && t_stop > 0.0) {
        return Err(SpiceError::InvalidOption(format!(
            "t_stop must be finite and positive, got {t_stop}"
        )));
    }
    let sys = MnaSystem::build(circuit)?;

    // Initial condition: DC operating point at t = 0.
    let x0 = crate::dc::solve_with_continuation_pub(&sys, 0.0, opts, cache)?;

    // Collect and dedupe source breakpoints inside (0, t_stop].
    let mut breakpoints: Vec<f64> = Vec::new();
    for v in &sys.vsources {
        breakpoints.extend(v.wave.breakpoints(t_stop));
    }
    for i in &sys.isources {
        breakpoints.extend(i.wave.breakpoints(t_stop));
    }
    breakpoints.retain(|&t| t > 0.0 && t <= t_stop);
    breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    breakpoints.dedup_by(|a, b| (*a - *b).abs() < opts.tstep_min);

    let states: Vec<CapState> = sys
        .capacitors
        .iter()
        .map(|c| CapState {
            u: MnaSystem::voltage(&x0, c.a) - MnaSystem::voltage(&x0, c.b),
            i: 0.0,
        })
        .collect();

    // Per-node / per-branch series are accumulated incrementally as steps
    // are accepted (row 0 is ground and stays all-zero).
    let mut samples = Samples {
        times: vec![0.0],
        node_values: vec![Vec::new(); sys.n_nodes],
        branch_values: vec![Vec::new(); sys.vsources.len()],
    };
    samples.record(&sys, &x0);

    let mut ws = TranWorkspace::new(&sys, opts, cache);
    match opts.timestep {
        TimestepControl::Fixed => march_fixed(
            &sys,
            opts,
            t_stop,
            breakpoints,
            &mut ws,
            x0,
            states,
            &mut samples,
        )?,
        TimestepControl::Adaptive { tstep_max, lte_tol } => march_adaptive(
            &sys,
            opts,
            t_stop,
            tstep_max,
            lte_tol,
            breakpoints,
            &mut ws,
            x0,
            states,
            &mut samples,
        )?,
    }

    Ok(TranResult {
        times: samples.times.into(),
        node_values: samples.node_values,
        branch_values: samples.branch_values,
        node_names: sys.node_names.clone(),
        source_names: sys.vsources.iter().map(|v| v.name.clone()).collect(),
    })
}

/// Accepted-sample accumulator shared by both marching loops.
struct Samples {
    times: Vec<f64>,
    node_values: Vec<Vec<f64>>,
    branch_values: Vec<Vec<f64>>,
}

impl Samples {
    fn record(&mut self, sys: &MnaSystem, x: &[f64]) {
        self.node_values[0].push(0.0);
        for node in 1..sys.n_nodes {
            self.node_values[node].push(x[node - 1]);
        }
        for (b, series) in self.branch_values.iter_mut().enumerate() {
            series.push(x[sys.n_v + b]);
        }
    }

    fn accept(&mut self, sys: &MnaSystem, t: f64, x: &[f64]) {
        self.times.push(t);
        self.record(sys, x);
    }
}

/// The fixed-step reference marcher: `tstep`-sized windows, halving only
/// on non-convergence. Bit-identical to every archived golden.
#[allow(clippy::too_many_arguments)]
fn march_fixed(
    sys: &MnaSystem,
    opts: &SimOptions,
    t_stop: f64,
    breakpoints: Vec<f64>,
    ws: &mut TranWorkspace,
    mut x: Vec<f64>,
    mut states: Vec<CapState>,
    samples: &mut Samples,
) -> Result<(), SpiceError> {
    let mut t = 0.0;
    let mut bp_iter = breakpoints.into_iter().peekable();
    // Force a damping backward-Euler step after DC and after breakpoints.
    let mut force_be = true;
    let tm = crate::metrics::metrics();

    while t < t_stop - opts.tstep_min {
        if let Some(deadline) = &opts.deadline {
            if deadline.expired() {
                crate::metrics::rescue_metrics().deadline_expirations.incr();
                return Err(SpiceError::DeadlineExceeded { time: t });
            }
        }
        let mut t_next = t + opts.tstep;
        let mut hit_breakpoint = false;
        if let Some(&bp) = bp_iter.peek() {
            if bp <= t_next + opts.tstep_min {
                t_next = bp;
                bp_iter.next();
                hit_breakpoint = true;
                tm.breakpoints_hit.incr();
            }
        }
        if t_next > t_stop {
            t_next = t_stop;
        }

        // Take the step, halving on non-convergence. Once a rescue had to
        // fall back to backward Euler, the rest of this window keeps BE:
        // the trapezoidal state history is no longer trustworthy past a
        // point that needed L-stable damping to converge at all.
        let mut window_be = false;
        let mut sub_t = t;
        let mut remaining = t_next - t;
        while remaining > 0.5 * opts.tstep_min {
            let mut h = remaining;
            loop {
                let be = force_be || window_be || opts.method == IntegrationMethod::BackwardEuler;
                match ws.try_step(sys, &x, &states, sub_t + h, h, be, opts.gmin, opts) {
                    Ok(_) => {
                        sub_t += h;
                        std::mem::swap(&mut x, &mut ws.newton.x);
                        std::mem::swap(&mut states, &mut ws.new_states);
                        samples.accept(sys, sub_t, &x);
                        force_be = false;
                        tm.steps_accepted.incr();
                        break;
                    }
                    Err(SpiceError::NonConvergence { .. }) if h / 2.0 >= opts.tstep_min => {
                        h /= 2.0;
                        tm.steps_rejected.incr();
                        tm.step_halvings.incr();
                    }
                    Err(SpiceError::NonConvergence { .. })
                        if t_next - sub_t <= 2.0 * opts.tstep_min =>
                    {
                        // The unconverged window cannot be subdivided any
                        // further and is below the resolvable step size:
                        // treat the target time as reached with the state
                        // from the last accepted point, instead of failing
                        // the whole transient over a sub-tolerance sliver.
                        tm.slivers_accepted.incr();
                        sub_t = t_next;
                        break;
                    }
                    Err(e @ SpiceError::NonConvergence { .. }) if opts.rescue => {
                        // Halving is exhausted and the window is not a
                        // sliver: climb the rescue ladder at this point.
                        match rescue_step(sys, ws, &x, &states, sub_t + h, h, be, opts, e) {
                            RescueOutcome::Rescued { used_be } => {
                                sub_t += h;
                                std::mem::swap(&mut x, &mut ws.newton.x);
                                std::mem::swap(&mut states, &mut ws.new_states);
                                samples.accept(sys, sub_t, &x);
                                force_be = false;
                                window_be |= used_be;
                                tm.steps_accepted.incr();
                                break;
                            }
                            RescueOutcome::Failed(err) => return Err(err),
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
            remaining = t_next - sub_t;
        }
        t = t_next;
        if hit_breakpoint {
            force_be = true;
        }
    }
    Ok(())
}

/// Trailing accepted solutions `(t, x)` for the LTE divided differences
/// and the predictor polynomial, oldest first. Evicted entries donate
/// their buffers back, so the history allocates nothing at steady state.
struct History {
    points: Vec<(f64, Vec<f64>)>,
}

impl History {
    const DEPTH: usize = 3;

    fn new(t: f64, x: &[f64]) -> History {
        let mut h = History {
            points: Vec::with_capacity(Self::DEPTH),
        };
        h.push(t, x);
        h
    }

    fn push(&mut self, t: f64, x: &[f64]) {
        let mut entry = if self.points.len() == Self::DEPTH {
            self.points.remove(0)
        } else {
            (0.0, Vec::with_capacity(x.len()))
        };
        entry.0 = t;
        entry.1.clear();
        entry.1.extend_from_slice(x);
        self.points.push(entry);
    }

    /// Drop everything before the discontinuity at the newest point:
    /// divided differences across a source breakpoint estimate nothing.
    fn restart(&mut self) {
        while self.points.len() > 1 {
            self.points.remove(0);
        }
    }

    /// Polynomial predictor: extrapolates the trailing solutions to `t`
    /// (quadratic through three points, linear through two) as the Newton
    /// warm start. Returns `false` when there is not enough history.
    fn predict_into(&self, t: f64, out: &mut Vec<f64>) -> bool {
        let n = self.points.len();
        out.clear();
        match n {
            0 | 1 => false,
            2 => {
                let (t1, x1) = &self.points[n - 2];
                let (t2, x2) = &self.points[n - 1];
                let s = (t - t2) / (t2 - t1);
                out.extend(x1.iter().zip(x2).map(|(a, b)| b + s * (b - a)));
                true
            }
            _ => {
                let (t0, x0) = &self.points[n - 3];
                let (t1, x1) = &self.points[n - 2];
                let (t2, x2) = &self.points[n - 1];
                let l0 = ((t - t1) * (t - t2)) / ((t0 - t1) * (t0 - t2));
                let l1 = ((t - t0) * (t - t2)) / ((t1 - t0) * (t1 - t2));
                let l2 = ((t - t0) * (t - t1)) / ((t2 - t0) * (t2 - t1));
                out.extend((0..x0.len()).map(|i| l0 * x0[i] + l1 * x1[i] + l2 * x2[i]));
                true
            }
        }
    }

    /// Worst per-node ratio of estimated local truncation error to its
    /// target for the candidate solution `x_new` at `t_new`.
    ///
    /// Backward Euler's LTE is `(h²/2)·x″`, the trapezoidal rule's
    /// `(h³/12)·x‴`; both derivatives come from divided differences over
    /// the trailing accepted points plus the candidate (`x″ ≈ 2·f[t₋₁,t₀,t₁]`,
    /// `x‴ ≈ 6·f[t₋₂,t₋₁,t₀,t₁]`). Only node-voltage rows participate —
    /// branch currents of ideal sources carry no integration error of
    /// their own. Returns `None` while the history is too short (right
    /// after DC or a breakpoint), where the estimate has no basis.
    #[allow(clippy::too_many_arguments)]
    fn lte_ratio(
        &self,
        t_new: f64,
        x_new: &[f64],
        n_v: usize,
        trap: bool,
        lte_tol: f64,
        opts: &SimOptions,
    ) -> Option<f64> {
        let n = self.points.len();
        if n < if trap { 3 } else { 2 } {
            return None;
        }
        let (t1, x1) = &self.points[n - 1];
        let (t2, x2) = &self.points[n - 2];
        let h_new = t_new - t1;
        let mut worst = 0.0f64;
        for i in 0..n_v {
            let d1a = (x_new[i] - x1[i]) / h_new;
            let d1b = (x1[i] - x2[i]) / (t1 - t2);
            let dd2 = (d1a - d1b) / (t_new - t2);
            let lte = if trap {
                let (t3, x3) = &self.points[n - 3];
                let d1c = (x2[i] - x3[i]) / (t2 - t3);
                let dd2b = (d1b - d1c) / (t1 - t3);
                let dd3 = (dd2 - dd2b) / (t_new - t3);
                0.5 * h_new.powi(3) * dd3
            } else {
                h_new * h_new * dd2
            };
            let target = lte_tol * (opts.vntol + opts.reltol * x_new[i].abs().max(x1[i].abs()));
            worst = worst.max(lte.abs() / target);
        }
        Some(worst)
    }
}

/// The LTE-controlled adaptive marcher: every accepted step re-sizes the
/// next one from a divided-difference truncation-error estimate, steps
/// whose estimate overshoots the target are rejected and retried smaller,
/// source breakpoints clamp the step end so edges are never stepped over,
/// and each Newton solve warm-starts from a polynomial predictor.
#[allow(clippy::too_many_arguments)]
fn march_adaptive(
    sys: &MnaSystem,
    opts: &SimOptions,
    t_stop: f64,
    tstep_max: f64,
    lte_tol: f64,
    breakpoints: Vec<f64>,
    ws: &mut TranWorkspace,
    mut x: Vec<f64>,
    mut states: Vec<CapState>,
    samples: &mut Samples,
) -> Result<(), SpiceError> {
    // Accepted-step growth is capped at 2x so the grid cannot jump from
    // edge-resolving to edge-skipping in one step; shrink decisions come
    // straight from the controller. 0.9 is the classic safety factor.
    const SAFETY: f64 = 0.9;
    const MAX_GROWTH: f64 = 2.0;
    const MAX_SHRINK: f64 = 0.1;

    let mut t = 0.0;
    let mut h = opts.tstep.min(tstep_max);
    let mut bp_iter = breakpoints.into_iter().peekable();
    let mut force_be = true;
    let mut hist = History::new(0.0, &x);
    let mut x_pred: Vec<f64> = Vec::new();
    // Rolling Newton-iteration count of the most recent cold-started
    // solve; the basis of the predictor-savings estimate.
    let mut cold_iters: u64 = 0;
    let tm = crate::metrics::metrics();
    let tmt = crate::metrics::tran_metrics();

    while t < t_stop - opts.tstep_min {
        if let Some(deadline) = &opts.deadline {
            if deadline.expired() {
                crate::metrics::rescue_metrics().deadline_expirations.incr();
                return Err(SpiceError::DeadlineExceeded { time: t });
            }
        }
        let mut t_next = t + h.clamp(opts.tstep_min, tstep_max);
        let mut hit_breakpoint = false;
        if let Some(&bp) = bp_iter.peek() {
            if bp <= t_next + opts.tstep_min {
                if bp < t_next {
                    tmt.breakpoint_clamps.incr();
                }
                t_next = bp;
                hit_breakpoint = true;
            }
        }
        if t_next > t_stop {
            t_next = t_stop;
        }
        let h_eff = t_next - t;
        let be = force_be || opts.method == IntegrationMethod::BackwardEuler;

        // Predictor warm start; right after DC or a breakpoint the last
        // accepted point is the only sensible start.
        let predicted = !force_be && hist.predict_into(t_next, &mut x_pred);
        let x_start: &[f64] = if predicted { &x_pred } else { &x };

        match ws.try_step(sys, x_start, &states, t_next, h_eff, be, opts.gmin, opts) {
            Ok(iters) => {
                // LTE accept/reject and next-step sizing. The error of
                // this step scales as h² (BE) or h³ (trap), so the
                // optimal-step exponent is 1/2 resp. 1/3.
                let exponent = if be { 0.5 } else { 1.0 / 3.0 };
                match hist.lte_ratio(t_next, &ws.newton.x, sys.n_v, !be, lte_tol, opts) {
                    Some(ratio) if ratio > 1.0 && h_eff > 2.0 * opts.tstep_min => {
                        // Overshoot with room to shrink: reject and retry.
                        tm.steps_rejected.incr();
                        tmt.steps_rejected.incr();
                        tmt.lte_step_shrinks.incr();
                        let factor = (SAFETY * ratio.powf(-exponent)).clamp(MAX_SHRINK, 0.9);
                        h = (h_eff * factor).max(opts.tstep_min);
                        continue;
                    }
                    Some(ratio) => {
                        let factor = if ratio > 0.0 {
                            (SAFETY * ratio.powf(-exponent)).clamp(MAX_SHRINK, MAX_GROWTH)
                        } else {
                            MAX_GROWTH
                        };
                        let h_next = (h_eff * factor).clamp(opts.tstep_min, tstep_max);
                        if h_next > h_eff {
                            tmt.lte_step_growths.incr();
                        } else if h_next < h_eff {
                            tmt.lte_step_shrinks.incr();
                        }
                        h = h_next;
                    }
                    None => {
                        // No estimate yet: grow cautiously towards the cap.
                        h = (h_eff * MAX_GROWTH).clamp(opts.tstep_min, tstep_max);
                    }
                }
                if predicted {
                    tmt.predictor_newton_iters_saved
                        .add(cold_iters.saturating_sub(iters));
                } else {
                    cold_iters = iters;
                }
                t = t_next;
                std::mem::swap(&mut x, &mut ws.newton.x);
                std::mem::swap(&mut states, &mut ws.new_states);
                samples.accept(sys, t, &x);
                hist.push(t, &x);
                tm.steps_accepted.incr();
                tmt.steps_accepted.incr();
                force_be = false;
                if hit_breakpoint {
                    bp_iter.next();
                    tm.breakpoints_hit.incr();
                    force_be = true;
                    hist.restart();
                    h = opts.tstep.min(tstep_max);
                }
            }
            Err(SpiceError::NonConvergence { .. }) if h_eff / 2.0 >= opts.tstep_min => {
                tm.steps_rejected.incr();
                tm.step_halvings.incr();
                tmt.steps_rejected.incr();
                h = h_eff / 2.0;
            }
            Err(SpiceError::NonConvergence { .. })
                if bp_iter.peek().copied().unwrap_or(t_stop).min(t_stop) - t
                    <= 2.0 * opts.tstep_min =>
            {
                // Sub-tstep_min sliver against the next hard boundary (a
                // breakpoint or t_stop) that cannot converge: treat the
                // target as reached, exactly as the fixed marcher does.
                // The guard must measure to the *boundary*, not to the
                // attempted step end — `t_next - t` is just the exhausted
                // step size, which is always sliver-sized by the time
                // halving gives up, and would swallow every failure.
                tm.slivers_accepted.incr();
                t = t_next;
                if hit_breakpoint {
                    bp_iter.next();
                    tm.breakpoints_hit.incr();
                    force_be = true;
                    hist.restart();
                    h = opts.tstep.min(tstep_max);
                }
            }
            Err(e @ SpiceError::NonConvergence { .. }) if opts.rescue => {
                // Shrinking is exhausted and the window is not a sliver:
                // climb the rescue ladder at this point. A rescued point
                // is accepted without the LTE test — the alternative is
                // failing the analysis — and treated as a discontinuity:
                // history restarts, pacing resets, and the next step is
                // damped with backward Euler.
                match rescue_step(sys, ws, x_start, &states, t_next, h_eff, be, opts, e) {
                    RescueOutcome::Rescued { .. } => {
                        t = t_next;
                        std::mem::swap(&mut x, &mut ws.newton.x);
                        std::mem::swap(&mut states, &mut ws.new_states);
                        samples.accept(sys, t, &x);
                        hist.push(t, &x);
                        hist.restart();
                        tm.steps_accepted.incr();
                        tmt.steps_accepted.incr();
                        force_be = true;
                        h = opts.tstep.min(tstep_max);
                        if hit_breakpoint {
                            bp_iter.next();
                            tm.breakpoints_hit.incr();
                        }
                    }
                    RescueOutcome::Failed(err) => return Err(err),
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksense_netlist::{MosParams, MosPolarity, SourceWave, GROUND};

    fn rc_circuit(r: f64, c: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("vin", inp, GROUND, SourceWave::step(0.0, 1.0, 0.0, 1e-13))
            .unwrap();
        ckt.add_resistor("r", inp, out, r).unwrap();
        ckt.add_capacitor("c", out, GROUND, c).unwrap();
        (ckt, out)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let (ckt, out) = rc_circuit(1e3, 1e-12); // tau = 1 ns
        let res = transient(&ckt, 5e-9, &SimOptions::default()).unwrap();
        let w = res.waveform(out);
        for frac in [0.5f64, 1.0, 2.0, 3.0] {
            let t = frac * 1e-9;
            let expect = 1.0 - (-frac).exp();
            let got = w.value_at(t + 1e-13); // offset by the source rise
            assert!(
                (got - expect).abs() < 5e-3,
                "at {frac} tau: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn backward_euler_also_converges_to_final_value() {
        let (ckt, out) = rc_circuit(1e3, 1e-12);
        let opts = SimOptions {
            method: IntegrationMethod::BackwardEuler,
            ..SimOptions::default()
        };
        let res = transient(&ckt, 10e-9, &opts).unwrap();
        assert!((res.waveform(out).value_at(10e-9) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn times_strictly_increase_and_hit_breakpoints() {
        let (ckt, _) = rc_circuit(1e3, 1e-12);
        let res = transient(&ckt, 2e-9, &SimOptions::default()).unwrap();
        let t = res.times();
        assert!(t.windows(2).all(|w| w[1] > w[0]));
        // The source has a breakpoint at 1e-13.
        assert!(t.iter().any(|&x| (x - 1e-13).abs() < 1e-15));
        assert!((t[t.len() - 1] - 2e-9).abs() < 1e-15);
    }

    #[test]
    fn cmos_inverter_switches_dynamically() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("vdd", vdd, GROUND, SourceWave::Dc(5.0))
            .unwrap();
        ckt.add_vsource(
            "vin",
            inp,
            GROUND,
            SourceWave::Pulse {
                v1: 0.0,
                v2: 5.0,
                delay: 1e-9,
                rise: 0.2e-9,
                fall: 0.2e-9,
                width: 2e-9,
                period: f64::INFINITY,
            },
        )
        .unwrap();
        let nmos = MosParams {
            vth0: 0.7,
            kp: 60e-6,
            lambda: 0.02,
            w: 4e-6,
            l: 1.2e-6,
            cgs: 3e-15,
            cgd: 3e-15,
            cdb: 4e-15,
        };
        let pmos = MosParams {
            vth0: -0.9,
            kp: 20e-6,
            lambda: 0.02,
            w: 10e-6,
            l: 1.2e-6,
            cgs: 7e-15,
            cgd: 7e-15,
            cdb: 9e-15,
        };
        ckt.add_mosfet("mp", MosPolarity::Pmos, out, inp, vdd, pmos)
            .unwrap();
        ckt.add_mosfet("mn", MosPolarity::Nmos, out, inp, GROUND, nmos)
            .unwrap();
        ckt.add_capacitor("cl", out, GROUND, 50e-15).unwrap();

        let res = transient(&ckt, 6e-9, &SimOptions::default()).unwrap();
        let w = res.waveform(out);
        assert!(w.value_at(0.9e-9) > 4.9, "output high before the pulse");
        assert!(w.value_at(2.5e-9) < 0.1, "output low during the pulse");
        assert!(w.value_at(5.8e-9) > 4.9, "output recovers after the pulse");
    }

    #[test]
    fn waveform_lookup_by_name_and_source_current() {
        let (ckt, _) = rc_circuit(1e3, 1e-12);
        let res = transient(&ckt, 1e-9, &SimOptions::default()).unwrap();
        assert!(res.waveform_named("out").is_some());
        assert!(res.waveform_named("nope").is_none());
        let i = res.source_current("vin").unwrap();
        // Right after the step the full 1 V sits across R: 1 mA leaves the
        // source (negative branch current by convention).
        assert!(i.value_at(2e-13) < -0.5e-3);
        assert!(res.source_current("nope").is_none());
    }

    #[test]
    fn final_sliver_below_tstep_min_is_accepted() {
        // A capacitor-free inverter whose supply *and* input snap from 0
        // to 5 V at 1 ps. The DC point and the pre-step window are
        // all-zero (one Newton iteration each), but the post-step window
        // needs more than `max_newton_iters = 3` iterations: the 2 V
        // damping clamp alone takes three updates to walk a pinned node
        // from 0 to 5 V. With `tstep_min` at 0.9 * tstep the failed
        // window cannot be halved either, so the remaining sliver used to
        // surface as `NonConvergence` even though the simulation had
        // already reached every resolvable time point. It must instead be
        // accepted as reached.
        let step_to = |v2: f64| SourceWave::Pulse {
            v1: 0.0,
            v2,
            delay: 1.0e-12,
            rise: 0.01e-12,
            fall: 0.2e-12,
            width: 1e-9,
            period: f64::INFINITY,
        };
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("vdd", vdd, GROUND, step_to(5.0)).unwrap();
        ckt.add_vsource("vin", inp, GROUND, step_to(5.0)).unwrap();
        let no_parasitics = MosParams {
            vth0: 0.7,
            kp: 60e-6,
            lambda: 0.02,
            w: 4e-6,
            l: 1.2e-6,
            cgs: 0.0,
            cgd: 0.0,
            cdb: 0.0,
        };
        ckt.add_mosfet(
            "mp",
            MosPolarity::Pmos,
            out,
            inp,
            vdd,
            MosParams {
                vth0: -0.9,
                kp: 20e-6,
                w: 10e-6,
                ..no_parasitics
            },
        )
        .unwrap();
        ckt.add_mosfet("mn", MosPolarity::Nmos, out, inp, GROUND, no_parasitics)
            .unwrap();

        let opts = SimOptions {
            tstep: 1e-12,
            tstep_min: 0.9e-12,
            max_newton_iters: 3,
            ..SimOptions::default()
        };
        let res = transient(&ckt, 2.5e-12, &opts).expect("sliver must be accepted, not fail");
        // The pre-step window converged; the post-step window is the
        // accepted sliver (no solvable point inside it).
        assert_eq!(res.times(), &[0.0, 1.0e-12]);
    }

    #[test]
    fn rejects_bad_t_stop() {
        let (ckt, _) = rc_circuit(1e3, 1e-12);
        assert!(transient(&ckt, 0.0, &SimOptions::default()).is_err());
        assert!(transient(&ckt, f64::NAN, &SimOptions::default()).is_err());
    }

    fn adaptive_opts() -> SimOptions {
        SimOptions {
            timestep: TimestepControl::Adaptive {
                tstep_max: 200e-12,
                lte_tol: 1.0,
            },
            ..SimOptions::default()
        }
    }

    #[test]
    fn adaptive_rc_matches_analytic_with_far_fewer_steps() {
        let (ckt, out) = rc_circuit(1e3, 1e-12); // tau = 1 ns
        let fixed = transient(&ckt, 5e-9, &SimOptions::default()).unwrap();
        let adaptive = transient(&ckt, 5e-9, &adaptive_opts()).unwrap();

        let w = adaptive.waveform(out);
        for frac in [0.5f64, 1.0, 2.0, 3.0] {
            let expect = 1.0 - (-frac).exp();
            let got = w.value_at(frac * 1e-9 + 1e-13);
            assert!(
                (got - expect).abs() < 1e-2,
                "at {frac} tau: got {got}, expected {expect}"
            );
        }
        assert!(
            fixed.times().len() >= 3 * adaptive.times().len(),
            "adaptive took {} steps vs fixed {}",
            adaptive.times().len(),
            fixed.times().len()
        );
    }

    #[test]
    fn adaptive_grid_still_hits_breakpoints_exactly() {
        let (ckt, _) = rc_circuit(1e3, 1e-12);
        let res = transient(&ckt, 2e-9, &adaptive_opts()).unwrap();
        let t = res.times();
        assert!(t.windows(2).all(|w| w[1] > w[0]));
        // The source has a breakpoint at 1e-13; the grid must land on it
        // even though the controller would prefer much larger steps.
        assert!(t.iter().any(|&x| (x - 1e-13).abs() < 1e-15));
        assert!((t[t.len() - 1] - 2e-9).abs() < 1e-15);
    }

    #[test]
    fn adaptive_backward_euler_matches_analytic() {
        let (ckt, out) = rc_circuit(1e3, 1e-12);
        let opts = SimOptions {
            method: IntegrationMethod::BackwardEuler,
            ..adaptive_opts()
        };
        let res = transient(&ckt, 10e-9, &opts).unwrap();
        assert!((res.waveform(out).value_at(10e-9) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn adaptive_inverter_agrees_with_fixed_grid() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("vdd", vdd, GROUND, SourceWave::Dc(5.0))
            .unwrap();
        ckt.add_vsource(
            "vin",
            inp,
            GROUND,
            SourceWave::Pulse {
                v1: 0.0,
                v2: 5.0,
                delay: 1e-9,
                rise: 0.2e-9,
                fall: 0.2e-9,
                width: 2e-9,
                period: f64::INFINITY,
            },
        )
        .unwrap();
        let nmos = MosParams {
            vth0: 0.7,
            kp: 60e-6,
            lambda: 0.02,
            w: 4e-6,
            l: 1.2e-6,
            cgs: 3e-15,
            cgd: 3e-15,
            cdb: 4e-15,
        };
        let pmos = MosParams {
            vth0: -0.9,
            kp: 20e-6,
            lambda: 0.02,
            w: 10e-6,
            l: 1.2e-6,
            cgs: 7e-15,
            cgd: 7e-15,
            cdb: 9e-15,
        };
        ckt.add_mosfet("mp", MosPolarity::Pmos, out, inp, vdd, pmos)
            .unwrap();
        ckt.add_mosfet("mn", MosPolarity::Nmos, out, inp, GROUND, nmos)
            .unwrap();
        ckt.add_capacitor("cl", out, GROUND, 50e-15).unwrap();

        let fixed = transient(&ckt, 6e-9, &SimOptions::default()).unwrap();
        let adaptive = transient(&ckt, 6e-9, &adaptive_opts()).unwrap();
        let diff = adaptive
            .waveform(out)
            .max_abs_difference(&fixed.waveform(out));
        assert!(diff < 0.1, "adaptive deviates from fixed by {diff} V");
        assert!(fixed.times().len() >= 3 * adaptive.times().len());
    }

    #[test]
    fn fixed_mode_is_unaffected_by_timestep_field() {
        // The default SimOptions carries TimestepControl::Fixed; an
        // explicit Fixed must produce the identical grid and samples.
        let (ckt, out) = rc_circuit(1e3, 1e-12);
        let implicit = transient(&ckt, 2e-9, &SimOptions::default()).unwrap();
        let explicit = transient(
            &ckt,
            2e-9,
            &SimOptions {
                timestep: TimestepControl::Fixed,
                ..SimOptions::default()
            },
        )
        .unwrap();
        assert_eq!(implicit.times(), explicit.times());
        assert_eq!(implicit.waveform(out), explicit.waveform(out));
    }
}
