//! Criterion benchmarks for the fault-simulation layer.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clocksense_core::{ClockPair, SensorBuilder, Technology};
use clocksense_faults::{
    inject, run_campaign, stuck_at_universe, CampaignConfig, Fault, Rails, StuckLevel,
};

fn bench_injection(c: &mut Criterion) {
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech)
        .load_capacitance(160e-15)
        .build()
        .expect("valid sensor");
    let bench = sensor
        .testbench(&ClockPair::single_shot(tech.vdd, 0.2e-9))
        .expect("bench builds");
    let rails = Rails::vdd_gnd("vdd");
    let fault = Fault::NodeStuckAt {
        node: "y1".into(),
        level: StuckLevel::Zero,
    };
    c.bench_function("inject_stuck_at", |b| {
        b.iter(|| black_box(inject(&bench, &fault, &rails).expect("injects")))
    });
}

fn bench_stuck_at_campaign(c: &mut Criterion) {
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech)
        .load_capacitance(160e-15)
        .build()
        .expect("valid sensor");
    let faults = stuck_at_universe(sensor.circuit());
    let cfg = CampaignConfig::new(ClockPair::single_shot(tech.vdd, 0.2e-9));
    let mut group = c.benchmark_group("fault_campaign");
    group.sample_size(10);
    group.bench_function("stuck_at_16_faults", |b| {
        b.iter(|| black_box(run_campaign(&sensor, &faults, &cfg).expect("runs")))
    });
    group.finish();
}

criterion_group!(benches, bench_injection, bench_stuck_at_campaign);
criterion_main!(benches);
