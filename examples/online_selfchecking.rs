//! Scenario: on-line, self-checking operation — the paper's
//! high-reliability application. The sensor runs continuously on a
//! periodic clock; a *transient* skew fault (the paper stresses most
//! clock-distribution faults are "intrinsically or practically
//! transient") hits exactly one cycle. The latching error indicator
//! catches and holds it even though later cycles are clean.
//!
//! Run with: `cargo run --release --example online_selfchecking`

use clocksense::checker::{ErrorIndicator, TwoRailChecker};
use clocksense::core::{SensorBuilder, Technology};
use clocksense::netlist::SourceWave;
use clocksense::spice::{transient, SimOptions};
use clocksense::wave::LogicThresholds;

/// Builds a PWL pulse train with the given rising-edge times.
fn pulse_train(rise_times: &[f64], width: f64, slew: f64, vdd: f64) -> SourceWave {
    let mut pts = vec![(0.0, 0.0)];
    for &t in rise_times {
        pts.push((t, 0.0));
        pts.push((t + slew, vdd));
        pts.push((t + slew + width, vdd));
        pts.push((t + 2.0 * slew + width, 0.0));
    }
    SourceWave::Pwl(pts)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech).load_capacitance(160e-15).build()?;

    // Five clock cycles at 6 ns; cycle 3's phi2 edge arrives 300 ps late
    // (a transient fault), every other edge is clean.
    let period = 6e-9;
    let cycles = 5;
    let faulty_cycle = 2; // zero-based
    let slew = 0.2e-9;
    let width = 2.5e-9;
    let rises1: Vec<f64> = (0..cycles).map(|k| 1e-9 + k as f64 * period).collect();
    let rises2: Vec<f64> = rises1
        .iter()
        .enumerate()
        .map(|(k, &t)| if k == faulty_cycle { t + 0.3e-9 } else { t })
        .collect();

    let bench = sensor.testbench_with_waves(
        pulse_train(&rises1, width, slew, tech.vdd),
        pulse_train(&rises2, width, slew, tech.vdd),
    )?;
    let t_stop = 1e-9 + cycles as f64 * period;
    let opts = SimOptions {
        tstep: 2e-12,
        ..SimOptions::default()
    };
    let result = transient(&bench, t_stop, &opts)?;
    let (y1_node, y2_node) = sensor.outputs();
    let y1 = result.waveform(y1_node);
    let y2 = result.waveform(y2_node);

    // The on-line indicator watches continuously and latches.
    let v_th = tech.logic_threshold();
    let mut indicator = ErrorIndicator::new(v_th, 0.5e-9);
    indicator.observe_waveforms(&y1, &y2);
    match (indicator.latched(), indicator.latched_at()) {
        (Some(kind), Some(t)) => {
            let cycle = ((t - 1e-9) / period).floor() as usize;
            println!(
                "indicator latched {kind:?} at t = {:.2} ns (cycle {cycle})",
                t * 1e9
            );
            assert_eq!(cycle, faulty_cycle, "must latch in the faulty cycle");
        }
        _ => panic!("the transient skew must be caught"),
    }

    // Per-cycle strobe view, as the checker would sample it.
    let th = LogicThresholds::single(v_th);
    let checker = TwoRailChecker::new();
    println!("\ncycle  strobe(y1,y2)  two-rail code  status");
    for (k, rise) in rises1.iter().enumerate().take(cycles) {
        let strobe = rise + slew + 0.9 * width;
        let l1 = th.classify_at(&y1, strobe).is_high();
        let l2 = th.classify_at(&y2, strobe).is_high();
        let pair = checker.encode_sensor(l1, l2);
        println!(
            "{k:>5}  ({},{})          {:?}  {}",
            l1 as u8,
            l2 as u8,
            pair,
            if pair.is_valid() { "ok" } else { "ERROR" }
        );
    }
    println!("\nthe indication held long enough for the checker, then operation resumed");
    Ok(())
}
