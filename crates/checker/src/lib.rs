//! Error indicators, two-rail checkers and scan paths.
//!
//! The paper's sensing circuits need read-out circuitry: "simple error
//! indicators capable of latching on error indications can be used, and
//! their response could be driven through a scan path (in the case of
//! off-line testing) or could feed a checker (in the case of on-line
//! applications)". This crate provides behavioural models of all three:
//!
//! * [`ErrorIndicator`] — latches when a sensor's outputs stay
//!   complementary (the `(0,1)` / `(1,0)` error indication) for longer
//!   than a hold time (paper reference \[9\]);
//! * [`TwoRailChecker`] — a totally-self-checking two-rail checker tree
//!   (Carter & Schneider) reducing many indications to one code pair for
//!   on-line, self-checking operation;
//! * [`ScanPath`] — a shift chain bringing latched indications off-chip
//!   for off-line testing;
//! * [`OnlineMonitor`] — glue that samples sensor output waveforms every
//!   cycle and aggregates indications;
//! * [`FlipFlop`] / [`TimingPath`] — the synchronous-timing algebra behind
//!   the paper's motivation: delayed sampling masks delay faults, which is
//!   why clock faults need their own detection scheme.

mod electrical;
mod indicator;
mod online;
mod sampling;
mod scan;
mod tworail;

pub use electrical::{trc_cell_circuit, BuiltIndicatorCell, IndicatorCell};
pub use indicator::{ErrorIndicator, Indication};
pub use online::{MonitorReport, OnlineMonitor};
pub use sampling::{FlipFlop, SampleRecord, TimingPath};
pub use scan::ScanPath;
pub use tworail::{trc_cell, TwoRailChecker, TwoRailPair};
