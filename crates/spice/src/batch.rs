//! The batched many-variant transient kernel: K structurally-aligned
//! circuit variants marched in lockstep over **one** symbolic structure.
//!
//! Fault value-variants and Monte-Carlo samples differ from each other in
//! device *values* and source *waveforms*, almost never in topology. The
//! scalar path already shares the symbolic analysis across such variants
//! through a [`SymbolicCache`]; this module goes further and shares the
//! whole numeric march:
//!
//! * **SoA packing** — one CSR pattern ([`Symbolic`]), one compiled stamp
//!   plan, and K value planes (one [`SparseMatrix`] of numeric state per
//!   variant over the shared `Arc<Symbolic>`).
//! * **Delta stamping** — devices whose value is identical across the
//!   batch are stamped once into a *baseline plane*; each variant plane
//!   starts as a memcpy of the baseline and only the differing devices
//!   (the fault/perturbation deltas) are stamped on top.
//! * **Convergence-mask dropout** — Newton runs across the batch with a
//!   per-variant mask: converged variants stop iterating, failed variants
//!   drop out of the batch entirely and re-run on the scalar path (full
//!   step-halving and rescue ladder), so one pathological variant never
//!   poisons its batchmates.
//! * **Multi-RHS linear fast path** — batches without MOSFETs have
//!   state-independent matrices, so each variant factors once per
//!   `(h, method)` and every subsequent Newton iteration and time step is
//!   a forward/back substitution over contiguous slot arrays.
//!
//! The entry point is [`transient_batch`]; [`BatchSim`] packs one aligned
//! group explicitly. `SimOptions::batch == 0` (the default) keeps every
//! caller on the scalar path, bit-identical to [`transient_cached`].

use std::sync::Arc;

use clocksense_netlist::Circuit;

use crate::engine::{MnaSystem, StampPlan};
use crate::error::SpiceError;
use crate::matrix::LuScratch;
use crate::mos_eval::channel_current;
use crate::options::{IntegrationMethod, SimOptions, SolverKind, TimestepControl};
use crate::sparse::{SparseMatrix, SymbolicCache};
use crate::tran::{transient_cached, TranResult};

/// Capacitor integration state of one variant (branch voltage and current
/// at the last accepted point) — the batch keeps one list per variant.
#[derive(Debug, Clone, Copy)]
struct CapState {
    u: f64,
    i: f64,
}

/// One variant being marched inside a batch.
#[derive(Debug)]
struct Variant {
    sys: MnaSystem,
    /// Last accepted solution.
    x: Vec<f64>,
    /// Newton candidate buffer.
    x_new: Vec<f64>,
    rhs: Vec<f64>,
    states: Vec<CapState>,
    /// `(geq, ieq)` companions of the current step attempt.
    companions: Vec<(f64, f64)>,
    /// This variant's value plane over the shared symbolic structure.
    plane: SparseMatrix,
    /// Linear fast path: the factored plane and the `(h, be)` it was
    /// factored for. Invalidated whenever the step size or method flips.
    factored: Option<SparseMatrix>,
    factored_key: (u64, bool),
    scratch: LuScratch,
    /// Sampled series, lockstep with the batch time axis.
    node_values: Vec<Vec<f64>>,
    branch_values: Vec<Vec<f64>>,
    /// `Some(err)` once the variant has dropped out of the batch.
    failed: Option<SpiceError>,
}

/// Which devices differ across the batch (delta-stamped per variant) and
/// which are identical (stamped once into the baseline plane).
#[derive(Debug, Default)]
struct DeltaSets {
    varying_res: Vec<usize>,
    varying_caps: Vec<usize>,
    /// True per capacitor index when its farads differ across the batch.
    cap_varies: Vec<bool>,
}

/// A packed batch: K structurally-aligned circuit variants sharing one
/// symbolic structure, one stamp plan and one baseline stamp, marched in
/// lockstep by [`BatchSim::run`].
///
/// Packing fails (with [`SpiceError::InvalidOption`]) unless every
/// circuit has the same stamp topology — same node/branch layout and the
/// same matrix positions — with only device values and source waveforms
/// free to differ. [`transient_batch`] performs this grouping
/// automatically and falls back to the scalar path for whatever does not
/// align; reach for `BatchSim` directly when the caller already knows its
/// variants align (a value-fault campaign, a Monte-Carlo scatter).
///
/// # Examples
///
/// Two RC variants (different resistance, same topology) batched against
/// the scalar reference:
///
/// ```
/// use clocksense_netlist::{Circuit, SourceWave, GROUND};
/// use clocksense_spice::{
///     transient_cached, BatchSim, SimOptions, SolverKind, SymbolicCache,
/// };
///
/// fn rc(ohms: f64) -> Circuit {
///     let mut ckt = Circuit::new();
///     let inp = ckt.node("in");
///     let out = ckt.node("out");
///     ckt.add_vsource("vin", inp, GROUND, SourceWave::step(0.0, 1.0, 0.0, 1e-12))
///         .unwrap();
///     ckt.add_resistor("r", inp, out, ohms).unwrap();
///     ckt.add_capacitor("c", out, GROUND, 1e-13).unwrap();
///     ckt
/// }
///
/// let opts = SimOptions {
///     solver: SolverKind::Sparse,
///     batch: 2,
///     ..SimOptions::default()
/// };
/// let cache = SymbolicCache::new();
/// let variants = [rc(1_000.0), rc(2_000.0)];
/// let sim = BatchSim::pack(&variants, &opts, &cache).unwrap();
/// assert_eq!(sim.width(), 2);
/// let batched = sim.run(1e-9);
/// for (ckt, result) in variants.iter().zip(&batched) {
///     let scalar = transient_cached(ckt, 1e-9, &opts, &cache).unwrap();
///     let got = result.as_ref().unwrap().waveform_named("out").unwrap();
///     let want = scalar.waveform_named("out").unwrap();
///     assert!(got.max_abs_difference(&want) < 1e-9);
/// }
/// ```
#[derive(Debug)]
pub struct BatchSim {
    variants: Vec<Variant>,
    plan: Arc<StampPlan>,
    /// Scratch plane the shared baseline stamp is built in.
    baseline: SparseMatrix,
    deltas: DeltaSets,
    opts: SimOptions,
    linear: bool,
}

/// Structural alignment check: two systems may share a batch when their
/// matrix layout and every device's node rows coincide — values, waves
/// and MOSFET parameters are free to differ.
fn aligned(a: &MnaSystem, b: &MnaSystem) -> bool {
    a.dim == b.dim
        && a.n_v == b.n_v
        && a.n_nodes == b.n_nodes
        && a.resistors.len() == b.resistors.len()
        && a.capacitors.len() == b.capacitors.len()
        && a.vsources.len() == b.vsources.len()
        && a.isources.len() == b.isources.len()
        && a.mosfets.len() == b.mosfets.len()
        && a.resistors
            .iter()
            .zip(&b.resistors)
            .all(|(x, y)| x.a == y.a && x.b == y.b)
        && a.capacitors
            .iter()
            .zip(&b.capacitors)
            .all(|(x, y)| x.a == y.a && x.b == y.b)
        && a.vsources
            .iter()
            .zip(&b.vsources)
            .all(|(x, y)| x.plus == y.plus && x.minus == y.minus)
        && a.isources
            .iter()
            .zip(&b.isources)
            .all(|(x, y)| x.from == y.from && x.to == y.to)
        && a.mosfets
            .iter()
            .zip(&b.mosfets)
            .all(|(x, y)| x.d == y.d && x.g == y.g && x.s == y.s && x.polarity == y.polarity)
}

impl BatchSim {
    /// Packs `circuits` into one batch over a shared symbolic structure.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidOption`] when the options are out of
    /// domain, the batch is empty, batching is disabled or unsupported
    /// for these options (`batch < 2`, dense solver, adaptive timestep),
    /// or the circuits are not structurally aligned; propagates netlist
    /// validation errors from system assembly.
    pub fn pack(
        circuits: &[Circuit],
        opts: &SimOptions,
        cache: &SymbolicCache,
    ) -> Result<BatchSim, SpiceError> {
        opts.validate()?;
        if circuits.is_empty() {
            return Err(SpiceError::InvalidOption(
                "batch must contain at least one circuit".to_string(),
            ));
        }
        if opts.batch < 2 || opts.solver != SolverKind::Sparse {
            return Err(SpiceError::InvalidOption(
                "batching requires SimOptions { batch >= 2, solver: Sparse, .. }".to_string(),
            ));
        }
        if !matches!(opts.timestep, TimestepControl::Fixed) {
            return Err(SpiceError::InvalidOption(
                "batching requires the fixed-grid timestep control".to_string(),
            ));
        }
        if circuits.len() > opts.batch {
            return Err(SpiceError::InvalidOption(format!(
                "{} circuits exceed the batch width {}",
                circuits.len(),
                opts.batch
            )));
        }
        let systems = circuits
            .iter()
            .map(MnaSystem::build)
            .collect::<Result<Vec<_>, _>>()?;
        if !systems.iter().all(|s| aligned(&systems[0], s)) {
            return Err(SpiceError::InvalidOption(
                "circuits are not structurally aligned for batching".to_string(),
            ));
        }
        Ok(Self::from_systems(systems, opts, cache))
    }

    /// Packs already-built, already-aligned systems (the internal path of
    /// [`transient_batch`], which grouped and alignment-checked them).
    fn from_systems(systems: Vec<MnaSystem>, opts: &SimOptions, cache: &SymbolicCache) -> BatchSim {
        let sys0 = &systems[0];
        let pattern = sys0.stamp_pattern();
        let (sym, hit) = cache.get_or_analyze(sys0.dim, &pattern, sys0.vsources.len());
        let plan =
            Arc::new(sys0.build_plan(&mut |r, c| {
                sym.slot(r, c).expect("stamped position is in the pattern")
            }));
        let baseline = if hit {
            SparseMatrix::new_cached(Arc::clone(&sym))
        } else {
            SparseMatrix::new(Arc::clone(&sym))
        };

        // Delta sets: a device is "varying" when any variant disagrees
        // with variant 0 about its value.
        let mut deltas = DeltaSets {
            cap_varies: vec![false; sys0.capacitors.len()],
            ..DeltaSets::default()
        };
        for j in 0..sys0.resistors.len() {
            if systems
                .iter()
                .any(|s| s.resistors[j].conductance != sys0.resistors[j].conductance)
            {
                deltas.varying_res.push(j);
            }
        }
        for j in 0..sys0.capacitors.len() {
            if systems
                .iter()
                .any(|s| s.capacitors[j].farads != sys0.capacitors[j].farads)
            {
                deltas.varying_caps.push(j);
                deltas.cap_varies[j] = true;
            }
        }

        let linear = sys0.mosfets.is_empty();
        let variants = systems
            .into_iter()
            .map(|sys| {
                let dim = sys.dim;
                let n_caps = sys.capacitors.len();
                let n_nodes = sys.n_nodes;
                let n_src = sys.vsources.len();
                Variant {
                    sys,
                    x: vec![0.0; dim],
                    x_new: Vec::with_capacity(dim),
                    rhs: vec![0.0; dim],
                    states: Vec::with_capacity(n_caps),
                    companions: Vec::with_capacity(n_caps),
                    plane: SparseMatrix::new_cached(Arc::clone(&sym)),
                    factored: None,
                    factored_key: (0, false),
                    scratch: LuScratch::new(),
                    node_values: vec![Vec::new(); n_nodes],
                    branch_values: vec![Vec::new(); n_src],
                    failed: None,
                }
            })
            .collect();

        BatchSim {
            variants,
            plan,
            baseline,
            deltas,
            opts: opts.clone(),
            linear,
        }
    }

    /// Number of variants packed into this batch.
    pub fn width(&self) -> usize {
        self.variants.len()
    }

    /// Marches the whole batch in lockstep from `t = 0` to `t_stop` and
    /// returns one result per variant, in packing order.
    ///
    /// A variant whose Newton solve fails at the lockstep step — or whose
    /// DC initial condition cannot be found — **drops out** with its
    /// structured error; its batchmates are unaffected. Callers wanting
    /// the scalar path's step-halving and rescue ladder for dropouts
    /// re-run them via [`transient_cached`] (exactly what
    /// [`transient_batch`] does).
    ///
    /// # Errors
    ///
    /// Per-variant: [`SpiceError::NonConvergence`] /
    /// [`SpiceError::SingularMatrix`] on a dropped-out variant,
    /// [`SpiceError::DeadlineExceeded`] once
    /// [`SimOptions::deadline`](crate::SimOptions::deadline) expires, and
    /// [`SpiceError::InvalidOption`] for a bad `t_stop`.
    pub fn run(mut self, t_stop: f64) -> Vec<Result<TranResult, SpiceError>> {
        if !(t_stop.is_finite() && t_stop > 0.0) {
            let err = || {
                Err(SpiceError::InvalidOption(format!(
                    "t_stop must be finite and positive, got {t_stop}"
                )))
            };
            return self.variants.iter().map(|_| err()).collect();
        }
        let bm = crate::metrics::batch_metrics();
        bm.batches_run.incr();

        let opts = self.opts.clone();
        let width = self.variants.len();

        // DC initial conditions, per variant (the same continuation path
        // the scalar transient takes). A DC failure is an immediate
        // dropout.
        let local_cache = SymbolicCache::new();
        for v in &mut self.variants {
            match crate::dc::solve_with_continuation_pub(&v.sys, 0.0, &opts, Some(&local_cache)) {
                Ok(x0) => {
                    v.states.clear();
                    v.states.extend(v.sys.capacitors.iter().map(|c| CapState {
                        u: MnaSystem::voltage(&x0, c.a) - MnaSystem::voltage(&x0, c.b),
                        i: 0.0,
                    }));
                    v.x = x0;
                    v.record_sample();
                }
                Err(e) => v.failed = Some(e),
            }
        }

        // Lockstep time grid: the union of every variant's source
        // breakpoints. Identical waves across the batch (value-variant
        // campaigns) make this grid — and therefore every sample — land
        // on exactly the scalar grid.
        let mut breakpoints: Vec<f64> = Vec::new();
        for v in &self.variants {
            for src in &v.sys.vsources {
                breakpoints.extend(src.wave.breakpoints(t_stop));
            }
            for src in &v.sys.isources {
                breakpoints.extend(src.wave.breakpoints(t_stop));
            }
        }
        breakpoints.retain(|&t| t > 0.0 && t <= t_stop);
        breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
        breakpoints.dedup_by(|a, b| (*a - *b).abs() < opts.tstep_min);

        let mut times: Vec<f64> = vec![0.0];
        let mut bp_iter = breakpoints.into_iter().peekable();
        let mut t = 0.0;
        let mut force_be = true;

        while t < t_stop - opts.tstep_min {
            if self.variants.iter().all(|v| v.failed.is_some()) {
                break;
            }
            if let Some(deadline) = &opts.deadline {
                if deadline.expired() {
                    for v in &mut self.variants {
                        if v.failed.is_none() {
                            v.failed = Some(SpiceError::DeadlineExceeded { time: t });
                        }
                    }
                    break;
                }
            }
            // Exactly the scalar marcher's grid arithmetic.
            let mut t_next = t + opts.tstep;
            let mut hit_breakpoint = false;
            if let Some(&bp) = bp_iter.peek() {
                if bp <= t_next + opts.tstep_min {
                    t_next = bp;
                    bp_iter.next();
                    hit_breakpoint = true;
                }
            }
            if t_next > t_stop {
                t_next = t_stop;
            }
            let h = t_next - t;
            let be = force_be || opts.method == IntegrationMethod::BackwardEuler;

            self.stamp_baseline(h, be);
            let active = self.variants.iter().filter(|v| v.failed.is_none()).count();
            bm.steps_scheduled.add(width as u64);
            bm.occupancy_active.add(active as u64);

            let (plan, deltas, baseline, linear) =
                (&self.plan, &self.deltas, &self.baseline, self.linear);
            let mut accepted = 0u64;
            for v in &mut self.variants {
                if v.failed.is_some() {
                    continue;
                }
                let stepped = if linear {
                    v.step_linear(plan, deltas, baseline, t_next, h, be, &opts)
                } else {
                    v.step_newton(plan, deltas, baseline, t_next, h, be, &opts)
                };
                match stepped {
                    Ok(()) => {
                        v.record_sample();
                        accepted += 1;
                    }
                    Err(e) => v.failed = Some(e),
                }
            }
            bm.steps_accepted.add(accepted);

            times.push(t_next);
            t = t_next;
            force_be = hit_breakpoint;
        }

        let times: Arc<[f64]> = times.into();
        self.variants
            .into_iter()
            .map(|v| match v.failed {
                Some(e) => Err(e),
                None => {
                    bm.variants_batched.incr();
                    Ok(TranResult::from_parts(
                        Arc::clone(&times),
                        v.node_values,
                        v.branch_values,
                        v.sys.node_names.clone(),
                        v.sys.vsources.iter().map(|s| s.name.clone()).collect(),
                    ))
                }
            })
            .collect()
    }

    /// Builds the shared baseline plane for a step of size `h` with the
    /// given method: batch-invariant resistors, the voltage sources' ±1
    /// constraint stamps, batch-invariant capacitor conductances and the
    /// diagonal gmin. Everything here is identical for every variant, so
    /// it is stamped once and memcpy'd K times per Newton iteration.
    fn stamp_baseline(&mut self, h: f64, be: bool) {
        let sys = &self.variants[0].sys;
        let plan = &self.plan;
        self.baseline.clear();
        let vals = self.baseline.values_mut();
        for (j, (r, slots)) in sys.resistors.iter().zip(&plan.res).enumerate() {
            if !self.deltas.varying_res.contains(&j) {
                slots.stamp_vals(vals, r.conductance);
            }
        }
        for slots in &plan.vsrc {
            if let Some(s) = slots.p_b {
                vals[s] += 1.0;
            }
            if let Some(s) = slots.b_p {
                vals[s] += 1.0;
            }
            if let Some(s) = slots.n_b {
                vals[s] -= 1.0;
            }
            if let Some(s) = slots.b_n {
                vals[s] -= 1.0;
            }
        }
        for (j, (c, slots)) in sys.capacitors.iter().zip(&plan.caps).enumerate() {
            if !self.deltas.cap_varies[j] {
                let geq = if be { c.farads / h } else { 2.0 * c.farads / h };
                slots.stamp_pair_vals(vals, geq);
            }
        }
        for &slot in &plan.node_diag {
            vals[slot] += self.opts.gmin;
        }
    }
}

impl Variant {
    /// Appends the current solution to the sampled series (row 0 is
    /// ground and stays all-zero), mirroring the scalar `Samples`.
    fn record_sample(&mut self) {
        self.node_values[0].push(0.0);
        for node in 1..self.sys.n_nodes {
            self.node_values[node].push(self.x[node - 1]);
        }
        for (b, series) in self.branch_values.iter_mut().enumerate() {
            series.push(self.x[self.sys.n_v + b]);
        }
    }

    /// Computes this variant's capacitor companions for a step of size
    /// `h` ending at the attempt's target time.
    fn companions(&mut self, h: f64, be: bool) {
        self.companions.clear();
        self.companions
            .extend(self.sys.capacitors.iter().zip(&self.states).map(|(c, st)| {
                if be {
                    let geq = c.farads / h;
                    (geq, geq * st.u)
                } else {
                    let geq = 2.0 * c.farads / h;
                    (geq, geq * st.u + st.i)
                }
            }));
    }

    /// Per-variant RHS of one Newton iteration: source waves, current
    /// sources and every capacitor's `ieq`.
    fn build_rhs(&mut self, plan: &StampPlan, t_next: f64) {
        self.rhs.fill(0.0);
        for (v, slots) in self.sys.vsources.iter().zip(&plan.vsrc) {
            self.rhs[slots.rhs_row] += v.wave.value_at(t_next);
        }
        for i in &self.sys.isources {
            let value = i.wave.value_at(t_next);
            if let Some(f) = i.from {
                self.rhs[f] -= value;
            }
            if let Some(to) = i.to {
                self.rhs[to] += value;
            }
        }
        for (&(_, ieq), slots) in self.companions.iter().zip(&plan.caps) {
            slots.stamp_rhs(&mut self.rhs, ieq);
        }
    }

    /// Delta-stamps this variant's matrix on top of a baseline copy:
    /// varying resistors and varying capacitor conductances.
    fn stamp_deltas(&mut self, plan: &StampPlan, deltas: &DeltaSets, baseline: &SparseMatrix) {
        self.plane.copy_values_from(baseline);
        let vals = self.plane.values_mut();
        for &j in &deltas.varying_res {
            plan.res[j].stamp_vals(vals, self.sys.resistors[j].conductance);
        }
        for &j in &deltas.varying_caps {
            let (geq, _) = self.companions[j];
            plan.caps[j].stamp_pair_vals(vals, geq);
        }
    }

    /// Updates the capacitor states from the converged solution.
    fn accept_states(&mut self) {
        for (j, (cap, &(geq, ieq))) in self.sys.capacitors.iter().zip(&self.companions).enumerate()
        {
            let u = MnaSystem::voltage(&self.x, cap.a) - MnaSystem::voltage(&self.x, cap.b);
            self.states[j] = CapState {
                u,
                i: geq * u - ieq,
            };
        }
    }

    /// The scalar Newton convergence test and damped update, applied to
    /// the candidate `x_new` in place over `x`. Returns whether every
    /// unknown was already inside tolerance *before* the update — the
    /// same accept semantics as the scalar loop.
    fn converge_update(&mut self, opts: &SimOptions) -> bool {
        let n_v = self.sys.n_v;
        let mut converged = true;
        for r in 0..self.sys.dim {
            let delta = self.x_new[r] - self.x[r];
            let tol = if r < n_v {
                opts.vntol + opts.reltol * self.x[r].abs().max(self.x_new[r].abs())
            } else {
                opts.abstol + opts.reltol * self.x[r].abs().max(self.x_new[r].abs())
            };
            if delta.abs() > tol {
                converged = false;
            }
            let clamped = if r < n_v {
                delta.clamp(-opts.newton_damping, opts.newton_damping)
            } else {
                delta
            };
            self.x[r] += clamped;
        }
        converged
    }

    /// Full Newton step for a batch with MOSFETs: every iteration
    /// memcpys the baseline, delta-stamps, stamps the per-variant
    /// linearised MOSFET companions, then factors and substitutes.
    #[allow(clippy::too_many_arguments)]
    fn step_newton(
        &mut self,
        plan: &StampPlan,
        deltas: &DeltaSets,
        baseline: &SparseMatrix,
        t_next: f64,
        h: f64,
        be: bool,
        opts: &SimOptions,
    ) -> Result<(), SpiceError> {
        self.companions(h, be);
        for _ in 0..opts.max_newton_iters {
            if let Some(deadline) = &opts.deadline {
                if deadline.expired() {
                    return Err(SpiceError::DeadlineExceeded { time: t_next });
                }
            }
            self.stamp_deltas(plan, deltas, baseline);
            self.build_rhs(plan, t_next);
            // MOSFET linearisation around the current iterate.
            let vals = self.plane.values_mut();
            for (mos, slots) in self.sys.mosfets.iter().zip(&plan.mos) {
                let vd = MnaSystem::voltage(&self.x, mos.d);
                let vg = MnaSystem::voltage(&self.x, mos.g);
                let vs = MnaSystem::voltage(&self.x, mos.s);
                let op = channel_current(mos.polarity, &mos.params, vd, vg, vs);
                let i_eq = op.id - op.g_d * vd - op.g_g * vg - op.g_s * vs;
                for (slot, g) in [
                    (slots.dd, op.g_d),
                    (slots.dg, op.g_g),
                    (slots.ds, op.g_s),
                    (slots.sd, -op.g_d),
                    (slots.sg, -op.g_g),
                    (slots.ss, -op.g_s),
                ] {
                    if let Some(s) = slot {
                        vals[s] += g;
                    }
                }
                if let Some(d) = slots.d {
                    self.rhs[d] -= i_eq;
                }
                if let Some(s) = slots.s {
                    self.rhs[s] += i_eq;
                }
                slots.gmin.stamp_vals(vals, opts.gmin);
            }
            self.plane.factor()?;
            self.plane
                .substitute(&self.rhs, &mut self.scratch, &mut self.x_new)?;
            if self.converge_update(opts) {
                self.accept_states();
                return Ok(());
            }
        }
        Err(SpiceError::NonConvergence {
            time: t_next,
            diagnostics: None,
        })
    }

    /// Linear fast path (no MOSFETs): the matrix is independent of the
    /// iterate, so the variant factors once per `(h, method)` and every
    /// Newton iteration of every step at that size is a substitution.
    /// The damped-update walk still runs exactly as in the scalar loop —
    /// repeated solves of an unchanged linear system yield an unchanged
    /// candidate, so re-solving is skipped, not re-ordered.
    #[allow(clippy::too_many_arguments)]
    fn step_linear(
        &mut self,
        plan: &StampPlan,
        deltas: &DeltaSets,
        baseline: &SparseMatrix,
        t_next: f64,
        h: f64,
        be: bool,
        opts: &SimOptions,
    ) -> Result<(), SpiceError> {
        let bm = crate::metrics::batch_metrics();
        self.companions(h, be);
        let key = (h.to_bits(), be);
        let mut factored_now = 0u64;
        if self.factored.as_ref().is_none() || self.factored_key != key {
            self.stamp_deltas(plan, deltas, baseline);
            self.plane.factor()?;
            self.factored = Some(self.plane.clone());
            self.factored_key = key;
            factored_now = 1;
        }
        self.build_rhs(plan, t_next);
        let factored = self.factored.as_ref().expect("factored plane present");
        factored.substitute(&self.rhs, &mut self.scratch, &mut self.x_new)?;

        // Each walk iteration below corresponds to one scalar Newton
        // iteration, each of which would have restamped and refactored;
        // the cached factored plane amortises to zero factorisations.
        let mut iters = 0u64;
        for _ in 0..opts.max_newton_iters {
            if let Some(deadline) = &opts.deadline {
                if deadline.expired() {
                    return Err(SpiceError::DeadlineExceeded { time: t_next });
                }
            }
            iters += 1;
            if self.converge_update(opts) {
                bm.refactors_saved.add(iters - factored_now);
                self.accept_states();
                return Ok(());
            }
        }
        bm.refactors_saved.add(iters - factored_now);
        Err(SpiceError::NonConvergence {
            time: t_next,
            diagnostics: None,
        })
    }
}

/// Runs a transient analysis of every circuit in `circuits`, batching
/// structurally-aligned variants into [`BatchSim`] lockstep groups of up
/// to [`SimOptions::batch`] and falling back to the scalar
/// [`transient_cached`] path wherever batching does not apply.
///
/// The scalar fallback (per variant) triggers when:
///
/// * `opts.batch < 2`, the solver is [`Dense`](SolverKind::Dense), or the
///   timestep control is adaptive — batching is then disabled wholesale;
/// * a circuit aligns with no other circuit in the slice (singleton
///   group);
/// * a variant **drops out** of its batch: its DC solve or a lockstep
///   Newton step failed. The variant re-runs scalar from `t = 0` with
///   step halving and the full rescue ladder available, so a variant that
///   is merely *hard* still completes, and one that truly fails reports
///   the scalar path's structured error — batchmates never see any of it.
///
/// Results are returned in input order. With identical source waveforms
/// across a batch the lockstep grid is exactly the scalar grid; variants
/// whose waves differ (Monte-Carlo slews) march the union of their
/// breakpoints and agree with the scalar path at sample level rather
/// than bit level (see `DESIGN.md` §3.5).
///
/// # Examples
///
/// ```
/// use clocksense_netlist::{Circuit, SourceWave, GROUND};
/// use clocksense_spice::{transient_batch, SimOptions, SolverKind, SymbolicCache};
///
/// fn divider(ohms: f64) -> Circuit {
///     let mut ckt = Circuit::new();
///     let a = ckt.node("a");
///     let b = ckt.node("b");
///     ckt.add_vsource("v", a, GROUND, SourceWave::Dc(1.0)).unwrap();
///     ckt.add_resistor("r1", a, b, ohms).unwrap();
///     ckt.add_resistor("r2", b, GROUND, 1_000.0).unwrap();
///     ckt.add_capacitor("c", b, GROUND, 1e-13).unwrap();
///     ckt
/// }
///
/// let opts = SimOptions {
///     solver: SolverKind::Sparse,
///     batch: 4,
///     ..SimOptions::default()
/// };
/// let cache = SymbolicCache::new();
/// let circuits: Vec<Circuit> = (0..4).map(|i| divider(500.0 + 250.0 * i as f64)).collect();
/// let results = transient_batch(&circuits, 1e-10, &opts, &cache);
/// assert_eq!(results.len(), 4);
/// assert!(results.iter().all(|r| r.is_ok()));
/// ```
pub fn transient_batch(
    circuits: &[Circuit],
    t_stop: f64,
    opts: &SimOptions,
    cache: &SymbolicCache,
) -> Vec<Result<TranResult, SpiceError>> {
    let scalar = |ckt: &Circuit| transient_cached(ckt, t_stop, opts, cache);
    if opts.batch < 2
        || opts.solver != SolverKind::Sparse
        || !matches!(opts.timestep, TimestepControl::Fixed)
    {
        return circuits.iter().map(scalar).collect();
    }

    // Group by structural alignment (linear scan over open groups: fault
    // universes interleave topology classes, so grouping must not be
    // order-sensitive), then chunk each group to the batch width.
    let mut results: Vec<Option<Result<TranResult, SpiceError>>> =
        (0..circuits.len()).map(|_| None).collect();
    let mut groups: Vec<Vec<(usize, MnaSystem)>> = Vec::new();
    let bm = crate::metrics::batch_metrics();
    for (idx, ckt) in circuits.iter().enumerate() {
        match MnaSystem::build(ckt) {
            Ok(sys) => {
                if let Some(group) = groups.iter_mut().find(|g| aligned(&g[0].1, &sys)) {
                    group.push((idx, sys));
                } else {
                    groups.push(vec![(idx, sys)]);
                }
            }
            // Scalar reproduces the structural error with full context.
            Err(_) => results[idx] = Some(scalar(ckt)),
        }
    }

    for group in groups {
        for chunk in group.chunks(opts.batch.max(1)) {
            if chunk.len() < 2 {
                for (idx, _) in chunk {
                    bm.variants_scalar_fallback.incr();
                    results[*idx] = Some(scalar(&circuits[*idx]));
                }
                continue;
            }
            let systems: Vec<MnaSystem> = chunk.iter().map(|(_, s)| s.clone()).collect();
            let sim = BatchSim::from_systems(systems, opts, cache);
            for ((idx, _), outcome) in chunk.iter().zip(sim.run(t_stop)) {
                results[*idx] = Some(match outcome {
                    Ok(r) => Ok(r),
                    Err(e) => {
                        // Dropout: re-run scalar with halving + rescue so
                        // a hard variant still completes, and a failing
                        // one reports the scalar path's structured error.
                        if matches!(e, SpiceError::NonConvergence { .. }) {
                            bm.dropouts_nonconvergence.incr();
                        }
                        bm.variants_scalar_fallback.incr();
                        scalar(&circuits[*idx])
                    }
                });
            }
        }
    }

    results
        .into_iter()
        .map(|r| r.expect("every circuit received a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksense_netlist::{MosParams, MosPolarity, SourceWave, GROUND};

    fn batch_opts(k: usize) -> SimOptions {
        SimOptions {
            solver: SolverKind::Sparse,
            batch: k,
            ..SimOptions::default()
        }
    }

    fn rc_chain(r1: f64, r2: f64, c1: f64, c2: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let mid = ckt.node("mid");
        let out = ckt.node("out");
        ckt.add_vsource(
            "vin",
            inp,
            GROUND,
            SourceWave::step(0.0, 1.0, 10e-12, 20e-12),
        )
        .unwrap();
        ckt.add_resistor("r1", inp, mid, r1).unwrap();
        ckt.add_resistor("r2", mid, out, r2).unwrap();
        ckt.add_capacitor("c1", mid, GROUND, c1).unwrap();
        ckt.add_capacitor("c2", out, GROUND, c2).unwrap();
        ckt
    }

    fn inverter(w_n: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("vdd", vdd, GROUND, SourceWave::Dc(5.0))
            .unwrap();
        ckt.add_vsource(
            "vin",
            inp,
            GROUND,
            SourceWave::Pulse {
                v1: 0.0,
                v2: 5.0,
                delay: 0.2e-9,
                rise: 0.1e-9,
                fall: 0.1e-9,
                width: 0.5e-9,
                period: f64::INFINITY,
            },
        )
        .unwrap();
        let nmos = MosParams {
            vth0: 0.7,
            kp: 60e-6,
            lambda: 0.02,
            w: w_n,
            l: 1.2e-6,
            cgs: 3e-15,
            cgd: 3e-15,
            cdb: 4e-15,
        };
        let pmos = MosParams {
            vth0: -0.9,
            kp: 20e-6,
            lambda: 0.02,
            w: 10e-6,
            l: 1.2e-6,
            cgs: 7e-15,
            cgd: 7e-15,
            cdb: 9e-15,
        };
        ckt.add_mosfet("mp", MosPolarity::Pmos, out, inp, vdd, pmos)
            .unwrap();
        ckt.add_mosfet("mn", MosPolarity::Nmos, out, inp, GROUND, nmos)
            .unwrap();
        ckt.add_capacitor("cl", out, GROUND, 20e-15).unwrap();
        ckt
    }

    fn assert_matches_scalar(circuits: &[Circuit], t_stop: f64, opts: &SimOptions, tol: f64) {
        let cache = SymbolicCache::new();
        let batched = transient_batch(circuits, t_stop, opts, &cache);
        for (ckt, got) in circuits.iter().zip(&batched) {
            let got = got.as_ref().expect("batched variant converged");
            let want = transient_cached(ckt, t_stop, opts, &cache).unwrap();
            assert_eq!(got.times(), want.times(), "lockstep grid == scalar grid");
            for name in want.node_names() {
                let a = got.waveform_named(name).unwrap();
                let b = want.waveform_named(name).unwrap();
                let diff = a.max_abs_difference(&b);
                assert!(diff <= tol, "node {name} deviates by {diff}");
            }
        }
    }

    #[test]
    fn linear_batch_matches_scalar() {
        let circuits: Vec<Circuit> = (0..4)
            .map(|i| {
                let f = 1.0 + 0.2 * i as f64;
                rc_chain(1e3 * f, 2e3, 50e-15 / f, 20e-15)
            })
            .collect();
        assert_matches_scalar(&circuits, 0.5e-9, &batch_opts(4), 1e-9);
    }

    #[test]
    fn nonlinear_batch_matches_scalar() {
        let circuits: Vec<Circuit> = (0..3)
            .map(|i| inverter(4e-6 * (1.0 + 0.3 * i as f64)))
            .collect();
        assert_matches_scalar(&circuits, 1e-9, &batch_opts(3), 1e-6);
    }

    #[test]
    fn unaligned_circuits_fall_back_to_scalar() {
        let mut other = Circuit::new();
        let a = other.node("a");
        other
            .add_vsource("v", a, GROUND, SourceWave::Dc(1.0))
            .unwrap();
        other.add_resistor("r", a, GROUND, 1e3).unwrap();
        let circuits = vec![rc_chain(1e3, 2e3, 50e-15, 20e-15), other];
        let cache = SymbolicCache::new();
        let results = transient_batch(&circuits, 0.2e-9, &batch_opts(8), &cache);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn batch_disabled_routes_everything_scalar() {
        let circuits = vec![rc_chain(1e3, 2e3, 50e-15, 20e-15); 2];
        let cache = SymbolicCache::new();
        let opts = SimOptions {
            solver: SolverKind::Sparse,
            ..SimOptions::default()
        };
        let results = transient_batch(&circuits, 0.2e-9, &opts, &cache);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn pack_rejects_misaligned_and_dense() {
        let cache = SymbolicCache::new();
        let mut other = Circuit::new();
        let a = other.node("a");
        other
            .add_vsource("v", a, GROUND, SourceWave::Dc(1.0))
            .unwrap();
        other.add_resistor("r", a, GROUND, 1e3).unwrap();
        let misaligned = [rc_chain(1e3, 2e3, 50e-15, 20e-15), other];
        assert!(BatchSim::pack(&misaligned, &batch_opts(2), &cache).is_err());

        let aligned = [
            rc_chain(1e3, 2e3, 50e-15, 20e-15),
            rc_chain(2e3, 2e3, 40e-15, 20e-15),
        ];
        let dense = SimOptions {
            batch: 2,
            ..SimOptions::default()
        };
        assert!(BatchSim::pack(&aligned, &dense, &cache).is_err());
        assert!(BatchSim::pack(&aligned, &batch_opts(2), &cache).is_ok());
    }

    #[test]
    fn dropout_preserves_batchmates_and_reports_structured_failure() {
        // Variant 1 is pathological: a sub-attosecond pulse the fixed
        // grid cannot resolve with the lockstep step, driving Newton hard
        // enough to fail at the batch's step size; the scalar fallback
        // (halving + rescue) must still complete it — and variant 0 must
        // march through untouched.
        let good = rc_chain(1e3, 2e3, 50e-15, 20e-15);
        let cache = SymbolicCache::new();
        let opts = SimOptions {
            max_newton_iters: 2,
            newton_damping: 1e-3,
            ..batch_opts(2)
        };
        let hard = rc_chain(1e3, 2e3, 50e-15, 20e-15);
        let results = transient_batch(&[good.clone(), hard], 0.2e-9, &opts, &cache);
        // Whatever the hard variant's fate, the good one's result must
        // equal its own scalar run under identical options.
        let want = transient_cached(&good, 0.2e-9, &opts, &cache);
        match (&results[0], &want) {
            (Ok(a), Ok(b)) => {
                let d = a
                    .waveform_named("out")
                    .unwrap()
                    .max_abs_difference(&b.waveform_named("out").unwrap());
                assert!(d <= 1e-9, "batchmate perturbed by {d}");
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("batch and scalar disagree on the clean variant: {a:?} vs {b:?}"),
        }
    }
}
