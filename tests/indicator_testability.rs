//! Testability of the error-indicator cell itself — the paper's reference
//! [9] is titled "Compact and *Highly Testable* Error Indicator", and the
//! scheme's reliability rests on the read-out circuitry being at least as
//! testable as the sensor. This campaign exercises the generic fault APIs
//! on a circuit other than the sensor.
//!
//! Unlike the sensor's clock inputs, the indicator's inputs *can* be
//! controlled independently, so the stimulus walks both complementary
//! polarities and both latch transitions, and IDDQ applies all four
//! static patterns.

use clocksense::checker::IndicatorCell;
use clocksense::core::Technology;
use clocksense::faults::{inject, stuck_at_universe, transistor_universe, Fault, Rails};
use clocksense::netlist::{instantiate, Circuit, PortMap, SourceWave, GROUND};
use clocksense::spice::{iddq, transient, SimOptions};
use clocksense::wave::{LogicThresholds, Waveform};

fn cell(tech: Technology) -> clocksense::checker::BuiltIndicatorCell {
    IndicatorCell::new(tech.nmos_params(3e-6), tech.pmos_params(6e-6))
        .build()
        .expect("valid cell")
}

fn instantiate_cell(
    bench: &mut Circuit,
    tech: Technology,
) -> Result<(), clocksense::netlist::NetlistError> {
    let built = cell(tech);
    let vdd = bench.node("vdd");
    let a = bench.node("a");
    let b = bench.node("b");
    let reset = bench.node("reset");
    instantiate(
        bench,
        built.circuit(),
        "u",
        PortMap::new()
            .map("vdd", vdd)
            .map("in1", a)
            .map("in2", b)
            .map("reset", reset),
    )?;
    Ok(())
}

/// Exercising bench: power-up reset; common-mode toggle; complementary
/// event of each polarity, each latched and then cleared.
fn dynamic_bench(tech: Technology) -> Circuit {
    let mut bench = Circuit::new();
    let vdd = bench.node("vdd");
    let a = bench.node("a");
    let b = bench.node("b");
    let reset = bench.node("reset");
    bench
        .add_vsource("vdd_supply", vdd, GROUND, SourceWave::Dc(tech.vdd))
        .expect("supply");
    // a: high, common-mode dip 1.5..2.5, event A low 3.5..4.5, high after.
    bench
        .add_vsource(
            "va",
            a,
            GROUND,
            SourceWave::Pwl(vec![
                (0.0, 5.0),
                (1.5e-9, 5.0),
                (1.7e-9, 0.0),
                (2.5e-9, 0.0),
                (2.7e-9, 5.0),
                (3.5e-9, 5.0),
                (3.7e-9, 0.0),
                (4.5e-9, 0.0),
                (4.7e-9, 5.0),
                (10.5e-9, 5.0),
            ]),
        )
        .expect("input a");
    // b: same common-mode dip, event B low 7.0..8.0.
    bench
        .add_vsource(
            "vb",
            b,
            GROUND,
            SourceWave::Pwl(vec![
                (0.0, 5.0),
                (1.5e-9, 5.0),
                (1.7e-9, 0.0),
                (2.5e-9, 0.0),
                (2.7e-9, 5.0),
                (7.0e-9, 5.0),
                (7.2e-9, 0.0),
                (8.0e-9, 0.0),
                (8.2e-9, 5.0),
                (10.5e-9, 5.0),
            ]),
        )
        .expect("input b");
    // reset: power-up, clear after event A, clear after event B.
    bench
        .add_vsource(
            "vreset",
            reset,
            GROUND,
            SourceWave::Pwl(vec![
                (0.0, 0.0),
                (0.1e-9, 5.0),
                (0.6e-9, 5.0),
                (0.8e-9, 0.0),
                (5.5e-9, 0.0),
                (5.7e-9, 5.0),
                (6.2e-9, 5.0),
                (6.4e-9, 0.0),
                (9.0e-9, 0.0),
                (9.2e-9, 5.0),
                (9.7e-9, 5.0),
                (9.9e-9, 0.0),
            ]),
        )
        .expect("reset");
    instantiate_cell(&mut bench, tech).expect("instantiates");
    bench
}

/// Static bench for IDDQ at one `(a, b)` pattern (reset low).
fn static_bench(tech: Technology, va: f64, vb: f64) -> Circuit {
    let mut bench = Circuit::new();
    let vdd = bench.node("vdd");
    let a = bench.node("a");
    let b = bench.node("b");
    let reset = bench.node("reset");
    bench
        .add_vsource("vdd_supply", vdd, GROUND, SourceWave::Dc(tech.vdd))
        .expect("supply");
    bench
        .add_vsource("va", a, GROUND, SourceWave::Dc(va))
        .expect("a");
    bench
        .add_vsource("vb", b, GROUND, SourceWave::Dc(vb))
        .expect("b");
    bench
        .add_vsource("vreset", reset, GROUND, SourceWave::Dc(0.0))
        .expect("reset");
    instantiate_cell(&mut bench, tech).expect("instantiates");
    bench
}

/// Probe times: after power-up, after the common-mode toggle, latched on
/// event A, cleared, latched on event B, cleared.
const PROBES: [f64; 6] = [1.2e-9, 3.2e-9, 5.2e-9, 6.8e-9, 8.7e-9, 10.4e-9];

fn signature(err: &Waveform, th: &LogicThresholds) -> Vec<bool> {
    PROBES
        .iter()
        .map(|&t| th.classify_at(err, t).is_high())
        .collect()
}

#[test]
fn indicator_cell_is_highly_testable() {
    let tech = Technology::cmos12();
    let reference_bench = dynamic_bench(tech);
    let opts = SimOptions {
        tstep: 2e-12,
        ..SimOptions::default()
    };
    let th = LogicThresholds::single(tech.logic_threshold());
    let reference = transient(&reference_bench, 10.5e-9, &opts).expect("fault-free run");
    let ref_sig = signature(&reference.waveform_named("u.err").expect("err"), &th);
    // Sanity: clear, clear, latched, cleared, latched, cleared.
    assert_eq!(ref_sig, vec![false, false, true, false, true, false]);

    // Fault universe restricted to the cell's own nodes and devices.
    let mut faults: Vec<Fault> = stuck_at_universe(&reference_bench)
        .into_iter()
        .filter(|f| f.id().contains("(u."))
        .collect();
    faults.extend(
        transistor_universe(&reference_bench)
            .into_iter()
            .filter(|f| f.id().contains("(u.")),
    );
    assert!(faults.len() > 50, "universe has {} faults", faults.len());

    let rails = Rails::vdd_gnd("vdd");
    let patterns = [(0.0, 0.0), (0.0, 5.0), (5.0, 0.0), (5.0, 5.0)];
    let mut logic = 0;
    let mut iddq_only = 0;
    let mut undetected_ids = Vec::new();
    for fault in &faults {
        let faulted = inject(&reference_bench, fault, &rails).expect("injects");
        let caught = match transient(&faulted, 10.5e-9, &opts) {
            Ok(result) => signature(&result.waveform_named("u.err").expect("err"), &th) != ref_sig,
            Err(_) => true,
        };
        if caught {
            logic += 1;
            continue;
        }
        // IDDQ over all four patterns (inputs independently controllable).
        let mut iddq_hit = false;
        for &(va, vb) in &patterns {
            let sb = static_bench(tech, va, vb);
            let faulted = inject(&sb, fault, &rails).expect("injects");
            if let Ok(current) = iddq(&faulted, "vdd_supply", &opts) {
                if current.abs() > 50e-6 {
                    iddq_hit = true;
                    break;
                }
            }
        }
        if iddq_hit {
            iddq_only += 1;
        } else {
            undetected_ids.push(fault.id());
        }
    }
    let combined = (logic + iddq_only) as f64 / faults.len() as f64;
    let logic_cov = logic as f64 / faults.len() as f64;
    // "Highly testable": most faults fall out of normal operation, and
    // IDDQ mops up the conducting-fight remainder.
    assert!(
        logic_cov > 0.7,
        "logic coverage {:.0}% too low; escapes: {:?}",
        logic_cov * 100.0,
        undetected_ids
    );
    assert!(
        combined >= 0.9,
        "combined coverage {:.0}% too low; escapes: {:?}",
        combined * 100.0,
        undetected_ids
    );
}
