//! Timing measurements between waveforms.

use crate::waveform::Waveform;

/// Delay from the `n`-th rising crossing of `threshold` on `from` to the
/// first crossing on `to` at or after it.
///
/// Returns `None` if either waveform lacks the required crossing. `rising`
/// selects the edge direction on both waveforms.
///
/// # Examples
///
/// ```
/// use clocksense_wave::{cross_delay, Waveform};
///
/// let a = Waveform::new(vec![0.0, 1.0], vec![0.0, 5.0]);
/// let b = Waveform::new(vec![0.0, 1.0, 2.0], vec![0.0, 0.0, 5.0]);
/// let d = cross_delay(&a, &b, 2.5, 0, true).expect("both cross");
/// assert!((d - 1.0).abs() < 1e-9);
/// ```
pub fn cross_delay(
    from: &Waveform,
    to: &Waveform,
    threshold: f64,
    n: usize,
    rising: bool,
) -> Option<f64> {
    let (from_cross, to_cross) = if rising {
        (
            from.rising_crossings(threshold),
            to.rising_crossings(threshold),
        )
    } else {
        (
            from.falling_crossings(threshold),
            to.falling_crossings(threshold),
        )
    };
    let t_from = *from_cross.get(n)?;
    let t_to = to_cross.iter().copied().find(|&t| t >= t_from)?;
    Some(t_to - t_from)
}

/// Skew between the first rising edges of two clock waveforms, measured at
/// `threshold`.
///
/// Positive result means `b` is late with respect to `a`. Returns `None` if
/// either waveform never crosses the threshold.
pub fn skew_between(a: &Waveform, b: &Waveform, threshold: f64) -> Option<f64> {
    let ta = *a.rising_crossings(threshold).first()?;
    let tb = *b.rising_crossings(threshold).first()?;
    Some(tb - ta)
}

/// 10 %–90 % rise (or 90 %–10 % fall) time of the first edge between
/// `v_low` and `v_high`.
///
/// Returns `None` if the waveform does not traverse both measurement levels
/// in the requested direction.
pub fn slew_time(w: &Waveform, v_low: f64, v_high: f64, rising: bool) -> Option<f64> {
    let lo = v_low + 0.1 * (v_high - v_low);
    let hi = v_low + 0.9 * (v_high - v_low);
    if rising {
        let t_lo = *w.rising_crossings(lo).first()?;
        let t_hi = w.rising_crossings(hi).into_iter().find(|&t| t >= t_lo)?;
        Some(t_hi - t_lo)
    } else {
        let t_hi = *w.falling_crossings(hi).first()?;
        let t_lo = w.falling_crossings(lo).into_iter().find(|&t| t >= t_hi)?;
        Some(t_lo - t_hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(delay: f64) -> Waveform {
        Waveform::from_fn(0.0, 10.0, 1001, move |t| {
            ((t - delay).clamp(0.0, 1.0)) * 5.0
        })
    }

    #[test]
    fn skew_is_signed() {
        let a = ramp(1.0);
        let b = ramp(1.3);
        let s = skew_between(&a, &b, 2.5).unwrap();
        assert!((s - 0.3).abs() < 0.02);
        let s2 = skew_between(&b, &a, 2.5).unwrap();
        assert!((s2 + 0.3).abs() < 0.02);
    }

    #[test]
    fn skew_none_without_crossing() {
        let flat = Waveform::new(vec![0.0, 1.0], vec![0.0, 0.0]);
        assert!(skew_between(&flat, &ramp(0.0), 2.5).is_none());
    }

    #[test]
    fn cross_delay_picks_next_edge() {
        let a = ramp(1.0);
        let b = ramp(2.0);
        let d = cross_delay(&a, &b, 2.5, 0, true).unwrap();
        assert!((d - 1.0).abs() < 0.02);
        // b never has a second rising edge.
        assert!(cross_delay(&a, &b, 2.5, 1, true).is_none());
    }

    #[test]
    fn slew_of_linear_ramp() {
        // 0→5 V in exactly 1 s: 10–90 % occupies 0.8 s.
        let w = ramp(0.0);
        let s = slew_time(&w, 0.0, 5.0, true).unwrap();
        assert!((s - 0.8).abs() < 0.02);
    }

    #[test]
    fn falling_slew() {
        let w = Waveform::from_fn(0.0, 2.0, 401, |t| 5.0 * (1.0 - t.clamp(0.0, 1.0)));
        let s = slew_time(&w, 0.0, 5.0, false).unwrap();
        assert!((s - 0.8).abs() < 0.02);
        assert!(slew_time(&w, 0.0, 5.0, true).is_none());
    }
}
