//! Kill/resume exercise of the checkpointed fault campaign.
//!
//! The binary runs the Section-3 campaign four ways against one journal:
//! a golden un-checkpointed run, a full checkpointed run, a resume after
//! the journal is torn back to ~50 % of its records (emulating a
//! `SIGKILL` mid-campaign), and an unchanged re-run. It asserts the
//! contract the checkpoint layer sells: every checkpointed variant
//! renders a byte-identical final report, the resume re-simulates only
//! the missing half, the re-run is pure memo hits — and editing one
//! device value afterwards re-simulates exactly the one fault whose
//! canonical hash moved. `--report <path>` archives the telemetry
//! snapshot (the `checkpoint.*` counters) as
//! `results/campaign_resume.json`.

use std::fs;

use clocksense_bench::{fast_mode, print_header, threads_arg, Table};
use clocksense_core::{ClockPair, SensorBuilder, Technology};
use clocksense_faults::{run_campaign, sensor_fault_universe, CampaignConfig, Fault};

fn ckpt_counters() -> (u64, u64, u64) {
    let snap = clocksense_telemetry::global().snapshot();
    (
        snap.counter("checkpoint.memo_hits").unwrap_or(0),
        snap.counter("checkpoint.memo_misses").unwrap_or(0),
        snap.counter("checkpoint.records_written").unwrap_or(0),
    )
}

fn main() {
    let bench = clocksense_bench::report::start_scoped("campaign_resume", "resume_bench");
    // The pass/fail criteria below read the `checkpoint.*` counters, so
    // this bench records telemetry even without `--report`.
    clocksense_telemetry::global().enable();
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech)
        .load_capacitance(160e-15)
        .build()
        .expect("valid sensor");
    let mut faults = sensor_fault_universe(&sensor, 100.0);
    if fast_mode() {
        // Keep one bridge: the edit-one-value phase below perturbs its
        // resistance, and the universe lists all bridges last.
        let bridge = faults
            .iter()
            .rfind(|f| matches!(f, Fault::Bridge { .. }))
            .cloned()
            .expect("universe contains a bridge");
        faults.truncate(11);
        faults.push(bridge);
    }
    let journal = std::env::temp_dir().join(format!(
        "clocksense_campaign_resume_{}.journal",
        std::process::id()
    ));
    let _ = fs::remove_file(&journal);

    // Scalar solves only: the batched pre-pass packs the *remaining*
    // items into fresh chunks on resume, which changes the shared
    // breakpoint grid and forfeits bit-exactness (see DESIGN.md §3.6).
    let mut base = CampaignConfig::new(ClockPair::single_shot(tech.vdd, 0.2e-9));
    base.threads = threads_arg();
    let ckpt_cfg = base.clone().checkpoint(&journal);

    print_header(&format!(
        "Checkpointed campaign: {} faults, kill at 50 %, resume, re-run",
        faults.len()
    ));
    let resume_scope = &bench.tele;
    resume_scope.counter("faults").add(faults.len() as u64);

    let mut table = Table::new(&["phase", "memo hits", "misses", "written", "report"]);
    let mut phase =
        |name: &str, slug: &str, run: &mut dyn FnMut() -> String, golden: Option<&str>| {
            let before = ckpt_counters();
            let rendered = run();
            let after = ckpt_counters();
            let (hits, misses, written) =
                (after.0 - before.0, after.1 - before.1, after.2 - before.2);
            let verdict = match golden {
                Some(golden) if rendered == golden => "byte-identical",
                Some(_) => "DIVERGED",
                None => "golden",
            };
            table.row(&[
                name.into(),
                format!("{hits}"),
                format!("{misses}"),
                format!("{written}"),
                verdict.into(),
            ]);
            resume_scope.counter(&format!("{slug}_hits")).add(hits);
            resume_scope.counter(&format!("{slug}_misses")).add(misses);
            (rendered, hits, misses)
        };

    let (golden, _, _) = phase(
        "golden",
        "golden",
        &mut || {
            run_campaign(&sensor, &faults, &base)
                .expect("golden")
                .to_string()
        },
        None,
    );
    let run_ckpt = |cfg: &CampaignConfig, faults: &[Fault]| {
        run_campaign(&sensor, faults, cfg)
            .expect("checkpointed campaign")
            .to_string()
    };

    let (full, _, full_misses) = phase(
        "full",
        "full",
        &mut || run_ckpt(&ckpt_cfg, &faults),
        Some(&golden),
    );
    assert_eq!(full, golden, "checkpointing changed the report");
    assert_eq!(full_misses as usize, faults.len());

    // Kill at 50 %: tear the journal back to its header plus half the
    // records, exactly what a SIGKILL between two atomic flushes leaves.
    let text = fs::read_to_string(&journal).expect("journal exists");
    let keep: Vec<&str> = text.lines().take(1 + faults.len() / 2).collect();
    fs::write(&journal, format!("{}\n", keep.join("\n"))).expect("tear journal");

    let (resumed, resumed_hits, resumed_misses) = phase(
        "resume@50%",
        "resume",
        &mut || run_ckpt(&ckpt_cfg, &faults),
        Some(&golden),
    );
    assert_eq!(resumed, golden, "resumed report is not byte-identical");
    assert_eq!(resumed_hits as usize, faults.len() / 2);
    assert_eq!(resumed_misses as usize, faults.len() - faults.len() / 2);

    let (rerun, rerun_hits, rerun_misses) = phase(
        "re-run",
        "rerun",
        &mut || run_ckpt(&ckpt_cfg, &faults),
        Some(&golden),
    );
    assert_eq!(rerun, golden);
    assert_eq!(
        rerun_hits as usize,
        faults.len(),
        "re-run must be pure hits"
    );
    assert_eq!(rerun_misses, 0, "re-run re-simulated a memoized fault");

    // Move one device value: only that fault's canonical hash moves.
    let mut edited = faults.clone();
    let bridge = edited
        .iter_mut()
        .find_map(|f| match f {
            Fault::Bridge { ohms, .. } => Some(ohms),
            _ => None,
        })
        .expect("universe contains a bridge");
    *bridge *= 2.5;
    let (_, edit_hits, edit_misses) = phase(
        "edit one value",
        "edit",
        &mut || run_ckpt(&ckpt_cfg, &edited),
        None,
    );
    assert_eq!(edit_misses, 1, "exactly the edited fault must re-simulate");
    assert_eq!(edit_hits as usize, faults.len() - 1);

    println!("{}", table.render());
    println!(
        "resume re-simulated {resumed_misses}/{} faults; unchanged re-run hit {rerun_hits}/{} \
         ({:.0} % memo rate); one edited value cost {edit_misses} re-simulation",
        faults.len(),
        faults.len(),
        100.0 * rerun_hits as f64 / faults.len() as f64,
    );
    let _ = fs::remove_file(&journal);
    bench.finish();
}
