//! Text histograms for distribution summaries.

use std::fmt;

/// A fixed-bin histogram over the half-open interval `[lo, hi)`, with a
/// text rendering used by the ablation binaries.
///
/// Out-of-range and NaN samples are never silently mixed into the edge
/// bins: they are tallied in explicit [`underflow`](Histogram::underflow),
/// [`overflow`](Histogram::overflow) and [`nan`](Histogram::nan) counts so
/// a mis-scaled axis shows up as a discrepancy instead of a skewed edge
/// bin.
///
/// # Examples
///
/// ```
/// use clocksense_montecarlo::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for v in [1.0, 1.5, 6.0, 9.9, 12.0] {
///     h.add(v);
/// }
/// assert_eq!(h.count(), 4); // 12.0 is out of range...
/// assert_eq!(h.overflow(), 1); // ...and accounted for here
/// assert_eq!(h.bin_counts()[0], 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<usize>,
    total: usize,
    underflow: usize,
    overflow: usize,
    nan: usize,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
            nan: 0,
        }
    }

    /// Adds a sample. Values in `[lo, hi)` land in their bin; everything
    /// else is rejected into the explicit side counts: `value < lo` in
    /// [`underflow`](Histogram::underflow), `value >= hi` in
    /// [`overflow`](Histogram::overflow) and NaN in
    /// [`nan`](Histogram::nan).
    pub fn add(&mut self, value: f64) {
        if value.is_nan() {
            self.nan += 1;
            return;
        }
        if value < self.lo {
            self.underflow += 1;
            return;
        }
        if value >= self.hi {
            self.overflow += 1;
            return;
        }
        let n = self.bins.len();
        let idx = (((value - self.lo) / (self.hi - self.lo)) * n as f64) as usize;
        // min() guards the roundoff case where a value just below `hi`
        // scales to exactly `n`.
        self.bins[idx.min(n - 1)] += 1;
        self.total += 1;
    }

    /// Samples rejected because they fell below `lo`.
    pub fn underflow(&self) -> usize {
        self.underflow
    }

    /// Samples rejected because they fell at or above `hi`.
    pub fn overflow(&self) -> usize {
        self.overflow
    }

    /// Samples rejected because they were NaN.
    pub fn nan(&self) -> usize {
        self.nan
    }

    /// Adds every sample from an iterator.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.add(v);
        }
    }

    /// Total in-range samples.
    pub fn count(&self) -> usize {
        self.total
    }

    /// Per-bin counts.
    pub fn bin_counts(&self) -> &[usize] {
        &self.bins
    }

    /// The `[start, end)` interval of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin out of range");
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (i, &count) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let bar_len = (40 * count).div_ceil(max);
            writeln!(
                f,
                "{:>10.3e} .. {:>10.3e} |{:<40} {}",
                lo,
                hi,
                "#".repeat(if count == 0 { 0 } else { bar_len }),
                count
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_uniform() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        assert!(h.bin_counts().iter().all(|&c| c == 1));
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn upper_bound_is_exclusive() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(1.0);
        assert_eq!(h.bin_counts()[3], 0, "hi itself is out of range");
        assert_eq!(h.overflow(), 1);
        h.add(0.999_999);
        assert_eq!(h.bin_counts()[3], 1, "just below hi lands in the last bin");
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn lower_bound_is_inclusive() {
        let mut h = Histogram::new(2.0, 6.0, 4);
        h.add(2.0);
        assert_eq!(h.bin_counts()[0], 1);
        assert_eq!(h.underflow(), 0);
    }

    #[test]
    fn under_range_is_counted_not_binned() {
        let mut h = Histogram::new(2.0, 6.0, 4);
        h.add(1.999);
        h.add(-1e30);
        h.add(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.underflow(), 3);
        assert!(h.bin_counts().iter().all(|&c| c == 0), "bin 0 stays clean");
    }

    #[test]
    fn over_range_is_counted_not_binned() {
        let mut h = Histogram::new(2.0, 6.0, 4);
        h.add(6.001);
        h.add(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.overflow(), 2);
        assert!(h.bin_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn nan_is_counted_not_binned() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(f64::NAN);
        assert_eq!(h.count(), 0);
        assert_eq!(h.nan(), 1);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert!(h.bin_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn ranges_partition_the_interval() {
        let h = Histogram::new(2.0, 6.0, 4);
        assert_eq!(h.bin_range(0), (2.0, 3.0));
        assert_eq!(h.bin_range(3), (5.0, 6.0));
    }

    #[test]
    fn display_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.extend([0.1, 0.5, 0.6, 0.9]);
        let text = h.to_string();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains('#'));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        Histogram::new(1.0, 1.0, 4);
    }
}
