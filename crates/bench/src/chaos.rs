//! Chaos invariant checker: randomized kill schedules against the
//! campaign/checkpoint/batch machinery.
//!
//! Each *schedule* samples one injection from the seeded chaos space
//! ([`ChaosPlan::sample`]) and drives the subsystem that owns the
//! injection site through a full run while armed, then checks the
//! durability contracts of the checkpoint and batch layers:
//!
//! * **No lost or duplicated verdicts** — every fault id in the campaign
//!   gets exactly one final record, in order, whatever was injected.
//! * **Byte-identical resume** — after a killed flush or load-time
//!   journal corruption, a clean rerun over the same journal reproduces
//!   the uninterrupted campaign byte for byte.
//! * **No cross-lane contamination** — a NaN/Inf-poisoned batch lane
//!   drops out to the scalar rescue path and every variant still matches
//!   the clean run to 1e-9.
//!
//! Violations are tallied per class and reported as counters under the
//! caller's scope, so `check_report.py --chaos` can gate on zeros.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use clocksense_chaos::{ChaosPlan, Injection, SplitMix64};
use clocksense_core::{ClockPair, SensingCircuit, SensorBuilder, Technology};
use clocksense_faults::{
    run_campaign, CampaignConfig, CampaignResult, DetectionOutcome, Fault, FaultError, StuckLevel,
};
use clocksense_netlist::{Circuit, SourceWave, GROUND};
use clocksense_spice::{transient_batch, SimOptions, SolverKind, SymbolicCache};
use clocksense_telemetry::Scope;

/// Aggregated outcome of a torture run.
#[derive(Debug, Default)]
pub struct TortureTally {
    /// Schedules executed.
    pub schedules: u64,
    /// Injections that actually fired (site reached while armed).
    pub fired: u64,
    /// Injections whose site was never reached.
    pub suppressed: u64,
    /// Campaign records missing, out of order or for the wrong fault.
    pub verdicts_lost: u64,
    /// Campaign record counts above the fault universe size.
    pub verdicts_duplicated: u64,
    /// A fault's verdict silently changed without a structured failure.
    pub verdict_flips: u64,
    /// Clean reruns over a survivor journal that failed to reproduce the
    /// uninterrupted campaign byte for byte.
    pub resume_mismatches: u64,
    /// Batch variants that drifted from the clean run under lane poison.
    pub lane_contaminations: u64,
    /// Benign, contract-respecting degradations (inconclusive verdicts
    /// carrying a structured failure under forced panics/deadlines).
    pub structured_degradations: u64,
    /// Human-readable descriptions of every violation found.
    pub violations: Vec<String>,
}

impl TortureTally {
    /// `true` when no durability contract was violated.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Records the tally as counters under `tele`.
    pub fn record(&self, tele: &Scope) {
        tele.counter("schedules_total").add(self.schedules);
        tele.counter("schedules_fired").add(self.fired);
        tele.counter("schedules_suppressed").add(self.suppressed);
        tele.counter("verdicts_lost").add(self.verdicts_lost);
        tele.counter("verdicts_duplicated")
            .add(self.verdicts_duplicated);
        tele.counter("verdict_flips").add(self.verdict_flips);
        tele.counter("resume_mismatches")
            .add(self.resume_mismatches);
        tele.counter("lane_contaminations")
            .add(self.lane_contaminations);
        tele.counter("structured_degradations")
            .add(self.structured_degradations);
    }
}

/// The campaign fixture every checkpoint/executor schedule runs against:
/// a small sensor fault universe plus its golden (chaos-free) results.
struct CampaignFixture {
    sensor: SensingCircuit,
    faults: Vec<Fault>,
    cfg: CampaignConfig,
    golden: CampaignResult,
    golden_text: String,
    /// Bytes of the journal after an uninterrupted checkpointed run —
    /// the seed state for load-time corruption schedules.
    pristine_journal: Vec<u8>,
}

impl CampaignFixture {
    fn build(tag: &str) -> CampaignFixture {
        let sensor = SensorBuilder::new(Technology::cmos12())
            .load_capacitance(160e-15)
            .build()
            .expect("reference sensor builds");
        let faults = vec![
            Fault::NodeStuckAt {
                node: "y1".into(),
                level: StuckLevel::Zero,
            },
            Fault::NodeStuckAt {
                node: "y1".into(),
                level: StuckLevel::One,
            },
            Fault::StuckOn {
                device: "m_b".into(),
            },
        ];
        let mut cfg = CampaignConfig::new(ClockPair::single_shot(5.0, 0.2e-9));
        cfg.threads = 1;
        let golden = run_campaign(&sensor, &faults, &cfg).expect("golden campaign runs");
        let golden_text = golden.to_string();
        let path = temp_path(tag, u64::MAX);
        let ck = cfg.clone().checkpoint(&path);
        run_campaign(&sensor, &faults, &ck).expect("golden checkpointed campaign runs");
        let pristine_journal = fs::read(&path).expect("golden journal exists");
        let _ = fs::remove_file(&path);
        CampaignFixture {
            sensor,
            faults,
            cfg,
            golden,
            golden_text,
            pristine_journal,
        }
    }
}

/// The batch fixture for lane-poison schedules: one SIMD block of RC
/// divider variants and the clean per-variant waveforms.
struct BatchFixture {
    circuits: Vec<Circuit>,
    opts: SimOptions,
    clean: Vec<Vec<f64>>,
}

impl BatchFixture {
    fn build() -> BatchFixture {
        let circuits: Vec<Circuit> = (0..8).map(|i| divider(500.0 + 100.0 * i as f64)).collect();
        let opts = SimOptions {
            solver: SolverKind::Sparse,
            batch: 8,
            ..SimOptions::default()
        };
        let clean = batch_voltages(&circuits, &opts)
            .expect("clean batch completes")
            .clone();
        BatchFixture {
            circuits,
            opts,
            clean,
        }
    }
}

fn divider(ohms: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource(
        "v",
        a,
        GROUND,
        SourceWave::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 10e-12,
            rise: 50e-12,
            fall: 50e-12,
            width: 400e-12,
            period: f64::INFINITY,
        },
    )
    .expect("source is valid");
    ckt.add_resistor("r1", a, b, ohms).expect("r1 is valid");
    ckt.add_resistor("r2", b, GROUND, 1_000.0)
        .expect("r2 is valid");
    ckt.add_capacitor("c", b, GROUND, 1e-13)
        .expect("c is valid");
    ckt
}

/// Final `b`-node waveforms for every variant; `Err` carries the first
/// variant failure (there should be none — dropouts re-run scalar).
fn batch_voltages(circuits: &[Circuit], opts: &SimOptions) -> Result<Vec<Vec<f64>>, String> {
    let cache = SymbolicCache::new();
    transient_batch(circuits, 1e-9, opts, &cache)
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            Ok(res) => res
                .waveform_named("b")
                .map(|w| w.values().to_vec())
                .ok_or_else(|| format!("variant {i}: node b missing")),
            Err(e) => Err(format!("variant {i}: {e}")),
        })
        .collect()
}

fn temp_path(tag: &str, k: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "clocksense_chaos_torture_{}_{tag}_{k}.journal",
        std::process::id()
    ))
}

/// Runs `schedules` randomized single-injection schedules derived from
/// `seed` and returns the violation tally. Pure function of the seed:
/// the same seed replays the same schedule sequence.
pub fn run_torture(seed: u64, schedules: u64) -> TortureTally {
    let campaign = CampaignFixture::build(&format!("seed{seed}"));
    let batch = BatchFixture::build();
    let mut tally = TortureTally::default();
    let mut rng = SplitMix64::new(seed);
    for k in 0..schedules {
        let plan = ChaosPlan::sample(rng.next_u64());
        let injection = plan.injections[0];
        tally.schedules += 1;
        match injection {
            Injection::FlushKill { .. } => flush_kill_schedule(&campaign, plan, k, &mut tally),
            Injection::JournalTruncate { .. } | Injection::JournalBitFlip { .. } => {
                corruption_schedule(&campaign, plan, k, &mut tally)
            }
            Injection::WorkerPanic { .. } => {
                degradation_schedule(&campaign, plan, k, &mut tally, None)
            }
            Injection::DeadlineExpiry { .. } => degradation_schedule(
                &campaign,
                plan,
                k,
                &mut tally,
                // Deadline polls only happen when an item deadline is
                // configured; the wall-clock budget itself is unreachable.
                Some(Duration::from_secs(3600)),
            ),
            Injection::LanePoison { .. } => lane_schedule(&batch, plan, k, &mut tally),
        }
    }
    tally
}

/// Shared verdict-set invariant: one record per fault, in order. Returns
/// `false` (after tallying) if the record set itself is broken.
fn check_verdict_set(
    fixture: &CampaignFixture,
    got: &CampaignResult,
    k: u64,
    tally: &mut TortureTally,
) -> bool {
    let mut ok = true;
    if got.records().len() > fixture.faults.len() {
        tally.verdicts_duplicated += 1;
        tally
            .violations
            .push(format!("schedule {k}: duplicated verdicts"));
        ok = false;
    }
    if got.records().len() < fixture.faults.len() {
        tally.verdicts_lost += 1;
        tally
            .violations
            .push(format!("schedule {k}: lost verdicts"));
        ok = false;
    }
    for (record, fault) in got.records().iter().zip(&fixture.faults) {
        if record.fault != *fault {
            tally.verdicts_lost += 1;
            tally.violations.push(format!(
                "schedule {k}: record for {} where {} belongs",
                record.fault.id(),
                fault.id()
            ));
            ok = false;
        }
    }
    ok
}

/// A killed flush aborts the run with a checkpoint error (or fires
/// nothing and matches golden); the survivor journal then resumes to a
/// byte-identical campaign.
fn flush_kill_schedule(
    fixture: &CampaignFixture,
    plan: ChaosPlan,
    k: u64,
    tally: &mut TortureTally,
) {
    let path = temp_path("kill", k);
    let _ = fs::remove_file(&path);
    let ck = fixture.cfg.clone().checkpoint(&path);
    let guard = plan.arm_scoped();
    let armed = run_campaign(&fixture.sensor, &fixture.faults, &ck);
    let summary = guard.disarm();
    tally.fired += summary.fired;
    tally.suppressed += summary.suppressed();
    match armed {
        Ok(result) => {
            // Nothing fired (or the error was absorbed): the run must be
            // indistinguishable from golden.
            if check_verdict_set(fixture, &result, k, tally)
                && result.to_string() != fixture.golden_text
            {
                tally.resume_mismatches += 1;
                tally
                    .violations
                    .push(format!("schedule {k}: unkilled run diverged from golden"));
            }
        }
        Err(FaultError::Checkpoint(_)) => {}
        Err(other) => {
            tally.violations.push(format!(
                "schedule {k}: killed flush surfaced as {other} instead of a checkpoint error"
            ));
        }
    }
    // Resume over whatever survived on disk: byte-identical to golden.
    match run_campaign(&fixture.sensor, &fixture.faults, &ck) {
        Ok(resumed) => {
            if check_verdict_set(fixture, &resumed, k, tally)
                && resumed.to_string() != fixture.golden_text
            {
                tally.resume_mismatches += 1;
                tally
                    .violations
                    .push(format!("schedule {k}: resume not byte-identical"));
            }
        }
        Err(e) => {
            tally.resume_mismatches += 1;
            tally
                .violations
                .push(format!("schedule {k}: resume failed: {e}"));
        }
    }
    let _ = fs::remove_file(&path);
}

/// Load-time journal corruption (truncation, bit flip) degrades to memo
/// misses: the armed rerun over a pristine journal still reproduces the
/// golden campaign byte for byte.
fn corruption_schedule(
    fixture: &CampaignFixture,
    plan: ChaosPlan,
    k: u64,
    tally: &mut TortureTally,
) {
    let path = temp_path("corrupt", k);
    fs::write(&path, &fixture.pristine_journal).expect("seed journal writes");
    let guard = plan.arm_scoped();
    let armed = run_campaign(&fixture.sensor, &fixture.faults, &ck_cfg(fixture, &path));
    let summary = guard.disarm();
    tally.fired += summary.fired;
    tally.suppressed += summary.suppressed();
    match armed {
        Ok(result) => {
            if check_verdict_set(fixture, &result, k, tally)
                && result.to_string() != fixture.golden_text
            {
                tally.resume_mismatches += 1;
                tally.violations.push(format!(
                    "schedule {k}: corrupted-journal run diverged from golden"
                ));
            }
        }
        Err(e) => {
            tally.resume_mismatches += 1;
            tally.violations.push(format!(
                "schedule {k}: corruption must degrade to memo misses, got {e}"
            ));
        }
    }
    let _ = fs::remove_file(&path);
}

fn ck_cfg(fixture: &CampaignFixture, path: &PathBuf) -> CampaignConfig {
    fixture.cfg.clone().checkpoint(path)
}

/// Forced worker panics and deadline expiries may cost an item its true
/// verdict, but never silently: each record either matches golden or is
/// an inconclusive verdict carrying a structured failure.
fn degradation_schedule(
    fixture: &CampaignFixture,
    plan: ChaosPlan,
    k: u64,
    tally: &mut TortureTally,
    deadline: Option<Duration>,
) {
    let mut cfg = fixture.cfg.clone();
    cfg.item_deadline = deadline;
    let guard = plan.arm_scoped();
    let armed = run_campaign(&fixture.sensor, &fixture.faults, &cfg);
    let summary = guard.disarm();
    tally.fired += summary.fired;
    tally.suppressed += summary.suppressed();
    let result = match armed {
        Ok(result) => result,
        Err(e) => {
            tally.violations.push(format!(
                "schedule {k}: degradation must not abort the campaign, got {e}"
            ));
            return;
        }
    };
    if !check_verdict_set(fixture, &result, k, tally) {
        return;
    }
    for (got, want) in result.records().iter().zip(fixture.golden.records()) {
        if got.outcome == want.outcome {
            continue;
        }
        if got.outcome == DetectionOutcome::Inconclusive && got.failure.is_some() {
            tally.structured_degradations += 1;
        } else {
            tally.verdict_flips += 1;
            tally.violations.push(format!(
                "schedule {k}: {} silently flipped {:?} -> {:?}",
                got.fault, want.outcome, got.outcome
            ));
        }
    }
}

/// A poisoned lane must drop out to the scalar path and leave every
/// variant's waveform within 1e-9 of the clean run.
fn lane_schedule(fixture: &BatchFixture, plan: ChaosPlan, k: u64, tally: &mut TortureTally) {
    let guard = plan.arm_scoped();
    let poisoned = batch_voltages(&fixture.circuits, &fixture.opts);
    let summary = guard.disarm();
    tally.fired += summary.fired;
    tally.suppressed += summary.suppressed();
    let poisoned = match poisoned {
        Ok(v) => v,
        Err(e) => {
            tally.lane_contaminations += 1;
            tally.violations.push(format!(
                "schedule {k}: poisoned lane must re-run scalar, got {e}"
            ));
            return;
        }
    };
    for (v, (got, want)) in poisoned.iter().zip(&fixture.clean).enumerate() {
        let drift = got
            .iter()
            .zip(want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        if got.len() != want.len() || drift > 1e-9 {
            tally.lane_contaminations += 1;
            tally.violations.push(format!(
                "schedule {k}: variant {v} contaminated (max drift {drift:.3e})"
            ));
        }
    }
}
