//! Zero-skew clock-tree construction (deferred-merge style, after Chao,
//! Hsu, Ho, Boese & Kahng — the paper's reference [3]).
//!
//! Subtrees are merged bottom-up with a greedy nearest-neighbour pairing;
//! each merge places its tapping point so the Elmore delays of the two
//! sides are *exactly* equal, elongating ("snaking") the wire towards the
//! faster side when the balance point falls outside the direct segment.

use crate::error::ClockTreeError;
use crate::geometry::Point;
use crate::htree::WireParasitics;
use crate::rctree::{RcNodeId, RcTree};

/// A clock sink: a position and a load capacitance.
#[derive(Debug, Clone, PartialEq)]
pub struct Sink {
    /// Placement of the sink.
    pub position: Point,
    /// Load capacitance (F).
    pub cap: f64,
    /// Label carried through to reports.
    pub name: String,
}

impl Sink {
    /// Creates a sink.
    pub fn new(name: &str, position: Point, cap: f64) -> Self {
        Sink {
            position,
            cap,
            name: name.to_string(),
        }
    }
}

/// Result of zero-skew construction.
#[derive(Debug, Clone)]
pub struct ZstResult {
    /// The routed clock net.
    pub tree: RcTree,
    /// Node of each sink, in input order.
    pub sink_nodes: Vec<RcNodeId>,
    /// Total routed wirelength (m), including elongations.
    pub total_wirelength: f64,
}

/// Bottom-up merge recipe.
enum MergeNode {
    Sink(usize),
    Merge {
        left: Box<MergeNode>,
        right: Box<MergeNode>,
        /// Wire length from the tap to each child's tap (m).
        left_len: f64,
        right_len: f64,
        position: Point,
    },
}

/// State of a subtree during bottom-up merging.
#[derive(Clone, Copy)]
struct SubtreeState {
    position: Point,
    /// Elmore delay from the subtree tap to its sinks (equal across sinks
    /// by construction).
    delay: f64,
    /// Total subtree capacitance.
    cap: f64,
}

/// The Elmore "gamma" of a k-section end-lumped wire model: a wire of
/// total (r, c) loaded by `c_load` has delay `r·c_load + γ·r·c` with
/// `γ = (k+1)/(2k)`; γ → ½ as the discretisation refines.
fn gamma(sections: usize) -> f64 {
    let k = sections as f64;
    (k + 1.0) / (2.0 * k)
}

/// Wire delay of length `len` with per-unit parasitics, driving `c_load`.
fn wire_delay(len: f64, p: &WireParasitics, c_load: f64) -> f64 {
    let r = p.r_per_m * len;
    let c = p.c_per_m * len;
    r * c_load + gamma(p.sections) * r * c
}

/// Builds a zero-skew clock tree over the given sinks.
///
/// The returned tree's Elmore delays from root to every sink are equal to
/// machine precision (see the tests); the driver resistance only adds a
/// common term and does not affect skew.
///
/// # Errors
///
/// Returns [`ClockTreeError::NoSinks`] for an empty sink list and
/// [`ClockTreeError::InvalidParameter`] for non-physical parasitics or
/// sink capacitances.
///
/// # Examples
///
/// ```
/// use clocksense_clocktree::{zero_skew_tree, Point, Sink, WireParasitics};
///
/// # fn main() -> Result<(), clocksense_clocktree::ClockTreeError> {
/// let sinks = vec![
///     Sink::new("ff1", Point::new(0.0, 0.0), 30e-15),
///     Sink::new("ff2", Point::new(1e-3, 0.2e-3), 60e-15),
///     Sink::new("ff3", Point::new(0.4e-3, 0.9e-3), 45e-15),
/// ];
/// let zst = zero_skew_tree(&sinks, WireParasitics::metal2())?;
/// let delays = zst.tree.elmore_delays(100.0);
/// let d0 = delays[zst.sink_nodes[0].index()];
/// for &s in &zst.sink_nodes {
///     assert!((delays[s.index()] - d0).abs() < 1e-18);
/// }
/// # Ok(())
/// # }
/// ```
pub fn zero_skew_tree(
    sinks: &[Sink],
    parasitics: WireParasitics,
) -> Result<ZstResult, ClockTreeError> {
    if sinks.is_empty() {
        return Err(ClockTreeError::NoSinks);
    }
    if !(parasitics.r_per_m > 0.0 && parasitics.c_per_m > 0.0 && parasitics.sections > 0) {
        return Err(ClockTreeError::InvalidParameter(
            "wire parasitics must be positive".to_string(),
        ));
    }
    for s in sinks {
        if !(s.cap.is_finite() && s.cap >= 0.0) {
            return Err(ClockTreeError::InvalidParameter(format!(
                "sink {} capacitance must be non-negative",
                s.name
            )));
        }
    }

    let alpha = parasitics.r_per_m;
    let beta = parasitics.c_per_m;
    let g = gamma(parasitics.sections);

    let mut forest: Vec<(MergeNode, SubtreeState)> = sinks
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                MergeNode::Sink(i),
                SubtreeState {
                    position: s.position,
                    delay: 0.0,
                    cap: s.cap,
                },
            )
        })
        .collect();
    let mut total_wirelength = 0.0;
    let mut merges: u64 = 0;

    while forest.len() > 1 {
        merges += 1;
        // Greedy nearest-neighbour pairing on tap positions.
        let (mut bi, mut bj, mut best) = (0, 1, f64::INFINITY);
        for i in 0..forest.len() {
            for j in (i + 1)..forest.len() {
                let d = forest[i].1.position.manhattan(forest[j].1.position);
                if d < best {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        // Remove the later index first so the earlier stays valid.
        let (right_node, s2) = forest.swap_remove(bj);
        let (left_node, s1) = forest.swap_remove(bi);

        let len = s1.position.manhattan(s2.position);
        // Zero-skew balance point x on [0,1] from side 1:
        //   t1 + αxL(c1 + γβxL) = t2 + α(1-x)L(c2 + γβ(1-x)L)
        // which is linear in x (the quadratic terms cancel).
        let (left_len, right_len, position, delay, extra_wire) = if len > 0.0 {
            let num = alpha * beta * g * len * len + alpha * len * s2.cap + (s2.delay - s1.delay);
            let den = 2.0 * alpha * beta * g * len * len + alpha * len * (s1.cap + s2.cap);
            let x = num / den;
            if (0.0..=1.0).contains(&x) {
                let l1 = x * len;
                let l2 = (1.0 - x) * len;
                let delay = s1.delay + wire_delay(l1, &parasitics, s1.cap);
                (l1, l2, s1.position.lerp(s2.position, x), delay, 0.0)
            } else if x < 0.0 {
                // Side 1 is already too slow: tap at side 1, snake side 2.
                let l2 = elongated_length(alpha, beta, g, s2.cap, s1.delay - s2.delay);
                (0.0, l2, s1.position, s1.delay, l2 - len)
            } else {
                let l1 = elongated_length(alpha, beta, g, s1.cap, s2.delay - s1.delay);
                (l1, 0.0, s2.position, s2.delay, l1 - len)
            }
        } else if (s1.delay - s2.delay).abs() < f64::EPSILON {
            (0.0, 0.0, s1.position, s1.delay, 0.0)
        } else if s1.delay > s2.delay {
            let l2 = elongated_length(alpha, beta, g, s2.cap, s1.delay - s2.delay);
            (0.0, l2, s1.position, s1.delay, l2)
        } else {
            let l1 = elongated_length(alpha, beta, g, s1.cap, s2.delay - s1.delay);
            (l1, 0.0, s2.position, s2.delay, 0.0)
        };
        total_wirelength += left_len + right_len;
        let _ = extra_wire;

        let cap = s1.cap + s2.cap + beta * (left_len + right_len);
        forest.push((
            MergeNode::Merge {
                left: Box::new(left_node),
                right: Box::new(right_node),
                left_len,
                right_len,
                position,
            },
            SubtreeState {
                position,
                delay,
                cap,
            },
        ));
    }

    // Materialise the recipe top-down.
    let (recipe, state) = forest.pop().expect("one tree remains");
    let mut tree = RcTree::new(0.0);
    tree.set_position(tree.root(), state.position)
        .expect("root exists");
    let mut sink_nodes = vec![RcNodeId(0); sinks.len()];
    materialise(
        &recipe,
        tree.root(),
        &mut tree,
        sinks,
        &parasitics,
        &mut sink_nodes,
    )?;
    let tele = clocksense_telemetry::global().scope("clocktree");
    tele.counter("dme_merges").add(merges);
    tele.counter("rc_nodes").add(tree.len() as u64);
    Ok(ZstResult {
        tree,
        sink_nodes,
        total_wirelength,
    })
}

/// Solves `αL(c_load + γβL) = dt` for the elongated length `L ≥ 0`.
fn elongated_length(alpha: f64, beta: f64, g: f64, c_load: f64, dt: f64) -> f64 {
    debug_assert!(dt >= 0.0);
    let a = alpha * beta * g;
    let b = alpha * c_load;
    // a L² + b L - dt = 0
    (-b + (b * b + 4.0 * a * dt).sqrt()) / (2.0 * a)
}

fn materialise(
    node: &MergeNode,
    at: RcNodeId,
    tree: &mut RcTree,
    sinks: &[Sink],
    p: &WireParasitics,
    sink_nodes: &mut [RcNodeId],
) -> Result<(), ClockTreeError> {
    match node {
        MergeNode::Sink(i) => {
            tree.add_capacitance(at, sinks[*i].cap)?;
            sink_nodes[*i] = at;
            Ok(())
        }
        MergeNode::Merge {
            left,
            right,
            left_len,
            right_len,
            position,
        } => {
            for (child, len) in [(left, *left_len), (right, *right_len)] {
                let end = if len > 0.0 {
                    let r_sec = p.r_per_m * len / p.sections as f64;
                    let c_sec = p.c_per_m * len / p.sections as f64;
                    let target = child_position(child, sinks);
                    let mut cur = at;
                    for k in 1..=p.sections {
                        cur = tree.add_node(cur, r_sec, c_sec)?;
                        let pos = position.lerp(target, k as f64 / p.sections as f64);
                        tree.set_position(cur, pos)?;
                    }
                    cur
                } else {
                    at
                };
                materialise(child, end, tree, sinks, p, sink_nodes)?;
            }
            Ok(())
        }
    }
}

/// Tap position of a recipe node.
fn child_position(node: &MergeNode, sinks: &[Sink]) -> Point {
    match node {
        MergeNode::Sink(i) => sinks[*i].position,
        MergeNode::Merge { position, .. } => *position,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_zero_skew(zst: &ZstResult) {
        let delays = zst.tree.elmore_delays(100.0);
        let d0 = delays[zst.sink_nodes[0].index()];
        for &s in &zst.sink_nodes {
            let d = delays[s.index()];
            assert!(
                (d - d0).abs() < d0.max(1e-15) * 1e-9,
                "skew {} vs {}",
                d,
                d0
            );
        }
    }

    #[test]
    fn single_sink_is_trivial() {
        let sinks = vec![Sink::new("s", Point::new(1.0, 1.0), 10e-15)];
        let zst = zero_skew_tree(&sinks, WireParasitics::metal2()).unwrap();
        assert_eq!(zst.tree.len(), 1);
        assert_eq!(zst.total_wirelength, 0.0);
    }

    #[test]
    fn symmetric_pair_taps_in_the_middle() {
        let sinks = vec![
            Sink::new("a", Point::new(0.0, 0.0), 50e-15),
            Sink::new("b", Point::new(2e-3, 0.0), 50e-15),
        ];
        let zst = zero_skew_tree(&sinks, WireParasitics::metal2()).unwrap();
        assert_zero_skew(&zst);
        let root_pos = zst.tree.position(zst.tree.root()).unwrap();
        assert!((root_pos.x - 1e-3).abs() < 1e-9, "tap at the midpoint");
        assert!((zst.total_wirelength - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_caps_shift_the_tap_towards_the_heavy_sink() {
        let sinks = vec![
            Sink::new("heavy", Point::new(0.0, 0.0), 200e-15),
            Sink::new("light", Point::new(2e-3, 0.0), 20e-15),
        ];
        let zst = zero_skew_tree(&sinks, WireParasitics::metal2()).unwrap();
        assert_zero_skew(&zst);
        let root_pos = zst.tree.position(zst.tree.root()).unwrap();
        assert!(
            root_pos.x < 1e-3,
            "tap must sit closer to the heavy sink, got {root_pos}"
        );
    }

    #[test]
    fn many_random_sinks_balance() {
        // Deterministic pseudo-random placement.
        let mut seed = 0x243f6a8885a308d3u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let sinks: Vec<Sink> = (0..17)
            .map(|i| {
                Sink::new(
                    &format!("s{i}"),
                    Point::new(rnd() * 3e-3, rnd() * 3e-3),
                    (20.0 + 80.0 * rnd()) * 1e-15,
                )
            })
            .collect();
        let zst = zero_skew_tree(&sinks, WireParasitics::metal2()).unwrap();
        assert_zero_skew(&zst);
        assert!(zst.total_wirelength > 0.0);
        assert_eq!(zst.sink_nodes.len(), 17);
    }

    #[test]
    fn coincident_sinks_with_unequal_caps_snake() {
        // Same position, different delay after first merges: force the
        // degenerate L = 0 path via two coincident sinks of unequal cap —
        // their taps coincide; delays are both 0, so the merge is trivial,
        // but a third distant sink exercises balancing.
        let sinks = vec![
            Sink::new("a", Point::new(0.0, 0.0), 50e-15),
            Sink::new("b", Point::new(0.0, 0.0), 120e-15),
            Sink::new("c", Point::new(1.5e-3, 1.0e-3), 30e-15),
        ];
        let zst = zero_skew_tree(&sinks, WireParasitics::metal2()).unwrap();
        assert_zero_skew(&zst);
    }

    #[test]
    fn empty_sinks_is_an_error() {
        assert_eq!(
            zero_skew_tree(&[], WireParasitics::metal2()).unwrap_err(),
            ClockTreeError::NoSinks
        );
    }

    #[test]
    fn negative_cap_is_rejected() {
        let sinks = vec![Sink::new("bad", Point::new(0.0, 0.0), -1.0)];
        assert!(matches!(
            zero_skew_tree(&sinks, WireParasitics::metal2()),
            Err(ClockTreeError::InvalidParameter(_))
        ));
    }

    #[test]
    fn elongation_balances_extreme_asymmetry() {
        // A far heavy cluster vs a single near light sink: the near side
        // needs snaking.
        let sinks = vec![
            Sink::new("far1", Point::new(3e-3, 0.0), 100e-15),
            Sink::new("far2", Point::new(3e-3, 0.2e-3), 100e-15),
            Sink::new("near", Point::new(0.1e-3, 0.0), 5e-15),
        ];
        let zst = zero_skew_tree(&sinks, WireParasitics::metal2()).unwrap();
        assert_zero_skew(&zst);
        // Snaking shows up as wirelength beyond the direct manhattan span.
        assert!(zst.total_wirelength > 3e-3);
    }
}
