//! Fig. 4 — minimum voltage reached by the sensing-circuit output as a
//! function of the skew between the clock phases, for different load
//! capacitances and clock slopes.
//!
//! Expected shape (paper): V_min grows monotonically with τ; the curve
//! crosses V_th = 2.75 V at the sensitivity τ_min; τ_min grows with the
//! load (the paper reports ≈0.09–0.16 ns over 80–240 fF) and the curves
//! for different clock slews are almost indistinguishable.

use clocksense_bench::{ff, print_header, ps, Table};
use clocksense_core::{find_tau_min, sweep_vmin, ClockPair, SensorBuilder, Technology};
use clocksense_spice::SimOptions;

fn main() {
    let _bench = clocksense_bench::report::start("fig4_vmin_vs_skew");
    let tech = Technology::cmos12();
    let opts = SimOptions {
        tstep: 2e-12,
        ..SimOptions::default()
    };
    let loads = [80e-15, 160e-15, 240e-15];
    let slews = [0.1e-9, 0.2e-9, 0.3e-9, 0.4e-9];
    let taus: Vec<f64> = (0..=15).map(|i| i as f64 * 0.02e-9).collect();
    let v_th = tech.logic_threshold();

    print_header("Fig. 4: V_min of the late output vs skew tau (slew 0.2 ns)");
    let mut table = Table::new(&["tau [ps]", "C=80 fF", "C=160 fF", "C=240 fF"]);
    let mut curves = Vec::new();
    for &load in &loads {
        let sensor = SensorBuilder::new(tech)
            .load_capacitance(load)
            .build()
            .expect("valid sensor");
        let clocks = ClockPair::single_shot(tech.vdd, 0.2e-9);
        curves.push(sweep_vmin(&sensor, &clocks, &taus, &opts).expect("sweep converges"));
    }
    for (k, &tau) in taus.iter().enumerate() {
        table.row(&[
            ps(tau),
            format!("{:.3}", curves[0][k].vmin),
            format!("{:.3}", curves[1][k].vmin),
            format!("{:.3}", curves[2][k].vmin),
        ]);
    }
    println!("{}", table.render());
    println!("V_th = {v_th:.2} V; entries above V_th are interpreted as error indications");

    // Monotonicity sanity (the paper's curves are monotone).
    for curve in &curves {
        for w in curve.windows(2) {
            assert!(
                w[1].vmin >= w[0].vmin - 0.05,
                "V_min must grow with tau: {:?}",
                w
            );
        }
    }

    print_header("Fig. 4 vertical lines: sensitivity tau_min per load and slew");
    let mut tmins = Table::new(&[
        "C_L [fF]",
        "slew 0.1 ns",
        "slew 0.2 ns",
        "slew 0.3 ns",
        "slew 0.4 ns",
        "slew spread [ps]",
    ]);
    for &load in &loads {
        let sensor = SensorBuilder::new(tech)
            .load_capacitance(load)
            .build()
            .expect("valid sensor");
        let mut row = vec![ff(load)];
        let mut values = Vec::new();
        for &slew in &slews {
            let clocks = ClockPair::single_shot(tech.vdd, slew);
            let tau = find_tau_min(&sensor, &clocks, 0.6e-9, 2e-12, &opts)
                .expect("bisection converges")
                .expect("detectable below 0.6 ns");
            values.push(tau);
            row.push(ps(tau));
        }
        let spread = values.iter().cloned().fold(f64::MIN, f64::max)
            - values.iter().cloned().fold(f64::MAX, f64::min);
        row.push(ps(spread));
        tmins.row(&row);
    }
    println!("{}", tmins.render());
    println!(
        "paper: tau_min varies from ~90 ps (80 fF) to ~160 ps (240 fF); \
         curves for different slews are almost indistinguishable"
    );
}
