#!/usr/bin/env bash
# Tier-1 verification: build, test, and doc the whole workspace.
# Run from the repository root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Numerics-sensitive suites again under release optimisations: the
# solver-equivalence bounds (dense vs sparse to 1e-9, tree solver
# cross-checks) must hold with fast-math-adjacent codegen too.
echo "==> cargo test --release -q (numerics-sensitive suites)"
cargo test --release -q -p clocksense-spice
cargo test --release -q --test solver_equivalence --test spice_roundtrip

# The examples are user-facing documentation; they must keep building
# and the quickstart must actually run against the current API.
echo "==> cargo build --release --examples"
cargo build --release --examples

echo "==> cargo run --release --example quickstart (smoke)"
cargo run --release --example quickstart

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps"
cargo doc --no-deps

echo "verify: OK"
