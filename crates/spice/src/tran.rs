//! Transient analysis.

use clocksense_netlist::{Circuit, NodeId};
use clocksense_wave::Waveform;

use crate::engine::{MnaSystem, NewtonWorkspace};
use crate::error::SpiceError;
use crate::options::{IntegrationMethod, SimOptions};
use crate::sparse::SymbolicCache;

/// Result of a transient analysis: every node voltage and every
/// voltage-source branch current, sampled at each accepted time point.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    node_values: Vec<Vec<f64>>,
    branch_values: Vec<Vec<f64>>,
    node_names: Vec<String>,
    source_names: Vec<String>,
}

impl TranResult {
    /// The accepted time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Voltage waveform at `node` (ground yields the all-zero waveform).
    ///
    /// # Panics
    ///
    /// Panics if `node` was not part of the analysed circuit.
    pub fn waveform(&self, node: NodeId) -> Waveform {
        assert!(
            node.index() < self.node_values.len(),
            "node {node} not in this analysis"
        );
        Waveform::new(self.times.clone(), self.node_values[node.index()].clone())
    }

    /// Voltage waveform looked up by node name.
    pub fn waveform_named(&self, name: &str) -> Option<Waveform> {
        let idx = self.node_names.iter().position(|n| n == name)?;
        Some(Waveform::new(
            self.times.clone(),
            self.node_values[idx].clone(),
        ))
    }

    /// Branch-current waveform of the named voltage source (current flowing
    /// `plus` → `minus` through the source; supplies deliver negative
    /// values — see [`iddq`](crate::iddq) for the DC sign convention).
    pub fn source_current(&self, name: &str) -> Option<Waveform> {
        let idx = self.source_names.iter().position(|n| n == name)?;
        Some(Waveform::new(
            self.times.clone(),
            self.branch_values[idx].clone(),
        ))
    }

    /// Names of all recorded nodes, in node-id order.
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }
}

#[derive(Debug, Clone, Copy)]
struct CapState {
    /// Branch voltage at the previous accepted point.
    u: f64,
    /// Branch current at the previous accepted point.
    i: f64,
}

/// Reusable buffers for the transient loop: the Newton workspace (MNA
/// matrix, RHS, LU permutation, solution vectors) plus the capacitor
/// companion and state buffers. Every integration attempt reuses these,
/// so the hot path performs no heap allocation after the first step.
#[derive(Debug, Clone)]
struct TranWorkspace {
    newton: NewtonWorkspace,
    /// `(geq, ieq)` companion per capacitor for the current attempt.
    companions: Vec<(f64, f64)>,
    /// Capacitor states implied by the attempt's solution.
    new_states: Vec<CapState>,
}

impl TranWorkspace {
    fn new(sys: &MnaSystem, opts: &SimOptions, cache: Option<&SymbolicCache>) -> Self {
        TranWorkspace {
            newton: NewtonWorkspace::for_system(sys, opts.solver, cache),
            companions: Vec::with_capacity(sys.capacitors.len()),
            new_states: Vec::with_capacity(sys.capacitors.len()),
        }
    }

    /// One integration attempt over `[t_next - h, t_next]`. On success the
    /// solution is left in `self.newton.x` and the updated capacitor
    /// states in `self.new_states`; the caller swaps them in on accept.
    #[allow(clippy::too_many_arguments)]
    fn try_step(
        &mut self,
        sys: &MnaSystem,
        x: &[f64],
        states: &[CapState],
        t_next: f64,
        h: f64,
        backward_euler: bool,
        opts: &SimOptions,
    ) -> Result<(), SpiceError> {
        // Companion model per capacitor: i = geq * u - ieq.
        self.companions.clear();
        self.companions
            .extend(sys.capacitors.iter().zip(states).map(|(c, st)| {
                if backward_euler {
                    let geq = c.farads / h;
                    (geq, geq * st.u)
                } else {
                    let geq = 2.0 * c.farads / h;
                    (geq, geq * st.u + st.i)
                }
            }));

        let companions = &self.companions;
        sys.newton_solve_ws(
            t_next,
            x,
            opts,
            opts.gmin,
            1.0,
            |m, rhs, plan| {
                for (slots, &(geq, ieq)) in plan.caps.iter().zip(companions) {
                    slots.stamp(m, rhs, geq, ieq);
                }
            },
            &mut self.newton,
        )?;

        let x_new = &self.newton.x;
        self.new_states.clear();
        self.new_states
            .extend(
                sys.capacitors
                    .iter()
                    .zip(&self.companions)
                    .map(|(cap, &(geq, ieq))| {
                        let u = MnaSystem::voltage(x_new, cap.a) - MnaSystem::voltage(x_new, cap.b);
                        CapState {
                            u,
                            i: geq * u - ieq,
                        }
                    }),
            );
        Ok(())
    }
}

/// Runs a transient analysis of `circuit` from `t = 0` to `t_stop`.
///
/// The initial condition is the DC operating point with sources at their
/// `t = 0` values. Integration uses the method in [`SimOptions::method`];
/// with the default trapezoidal rule, the step immediately after `t = 0`
/// and after every source breakpoint is taken with backward Euler to damp
/// start-up ringing. Source breakpoints are always hit exactly, and steps
/// that fail to converge are recursively halved down to
/// [`SimOptions::tstep_min`].
///
/// # Errors
///
/// Propagates [`SpiceError::Netlist`] / [`SpiceError::SingularMatrix`] from
/// system assembly and returns [`SpiceError::NonConvergence`] if a step
/// cannot be completed even at the minimum step size.
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn transient(
    circuit: &Circuit,
    t_stop: f64,
    opts: &SimOptions,
) -> Result<TranResult, SpiceError> {
    transient_with(circuit, t_stop, opts, None)
}

/// [`transient`] with a shared [`SymbolicCache`]: when `opts.solver` is
/// [`Sparse`](crate::SolverKind::Sparse), the one-time symbolic analysis
/// (fill-reducing ordering + fill pattern) of the circuit's topology is
/// looked up in `cache` and computed only on a miss. Batched workloads
/// simulating many same-topology variants — fault campaigns, Monte-Carlo
/// scatter — share a cache so every variant after the first pays for
/// numeric refactorisations only.
pub fn transient_cached(
    circuit: &Circuit,
    t_stop: f64,
    opts: &SimOptions,
    cache: &SymbolicCache,
) -> Result<TranResult, SpiceError> {
    transient_with(circuit, t_stop, opts, Some(cache))
}

fn transient_with(
    circuit: &Circuit,
    t_stop: f64,
    opts: &SimOptions,
    cache: Option<&SymbolicCache>,
) -> Result<TranResult, SpiceError> {
    opts.validate()?;
    // Even without a caller-provided cache, the DC initial condition and
    // the transient loop share one symbolic analysis of the topology.
    let local_cache;
    let cache = match cache {
        Some(c) => Some(c),
        None => {
            local_cache = SymbolicCache::new();
            Some(&local_cache)
        }
    };
    if !(t_stop.is_finite() && t_stop > 0.0) {
        return Err(SpiceError::InvalidOption(format!(
            "t_stop must be finite and positive, got {t_stop}"
        )));
    }
    let sys = MnaSystem::build(circuit)?;

    // Initial condition: DC operating point at t = 0.
    let x0 = crate::dc::solve_with_continuation_pub(&sys, 0.0, opts, cache)?;

    // Collect and dedupe source breakpoints inside (0, t_stop].
    let mut breakpoints: Vec<f64> = Vec::new();
    for v in &sys.vsources {
        breakpoints.extend(v.wave.breakpoints(t_stop));
    }
    for i in &sys.isources {
        breakpoints.extend(i.wave.breakpoints(t_stop));
    }
    breakpoints.retain(|&t| t > 0.0 && t <= t_stop);
    breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    breakpoints.dedup_by(|a, b| (*a - *b).abs() < opts.tstep_min);

    let mut states: Vec<CapState> = sys
        .capacitors
        .iter()
        .map(|c| CapState {
            u: MnaSystem::voltage(&x0, c.a) - MnaSystem::voltage(&x0, c.b),
            i: 0.0,
        })
        .collect();

    // Per-node / per-branch series are accumulated incrementally as steps
    // are accepted (row 0 is ground and stays all-zero), replacing the old
    // clone-every-solution-then-transpose pass.
    let mut times = vec![0.0];
    let mut node_values: Vec<Vec<f64>> = vec![Vec::new(); sys.n_nodes];
    let mut branch_values: Vec<Vec<f64>> = vec![Vec::new(); sys.vsources.len()];
    let record_point =
        |node_values: &mut Vec<Vec<f64>>, branch_values: &mut Vec<Vec<f64>>, x: &[f64]| {
            node_values[0].push(0.0);
            for node in 1..sys.n_nodes {
                node_values[node].push(x[node - 1]);
            }
            for (b, series) in branch_values.iter_mut().enumerate() {
                series.push(x[sys.n_v + b]);
            }
        };
    record_point(&mut node_values, &mut branch_values, &x0);

    let mut ws = TranWorkspace::new(&sys, opts, cache);
    let mut x = x0;
    let mut t = 0.0;
    let mut bp_iter = breakpoints.into_iter().peekable();
    // Force a damping backward-Euler step after DC and after breakpoints.
    let mut force_be = true;
    let tm = crate::metrics::metrics();

    while t < t_stop - opts.tstep_min {
        let mut t_next = t + opts.tstep;
        let mut hit_breakpoint = false;
        if let Some(&bp) = bp_iter.peek() {
            if bp <= t_next + opts.tstep_min {
                t_next = bp;
                bp_iter.next();
                hit_breakpoint = true;
                tm.breakpoints_hit.incr();
            }
        }
        if t_next > t_stop {
            t_next = t_stop;
        }

        // Take the step, halving on non-convergence.
        let mut sub_t = t;
        let mut remaining = t_next - t;
        while remaining > 0.5 * opts.tstep_min {
            let mut h = remaining;
            loop {
                let be = force_be || opts.method == IntegrationMethod::BackwardEuler;
                match ws.try_step(&sys, &x, &states, sub_t + h, h, be, opts) {
                    Ok(()) => {
                        sub_t += h;
                        std::mem::swap(&mut x, &mut ws.newton.x);
                        std::mem::swap(&mut states, &mut ws.new_states);
                        times.push(sub_t);
                        record_point(&mut node_values, &mut branch_values, &x);
                        force_be = false;
                        tm.steps_accepted.incr();
                        break;
                    }
                    Err(SpiceError::NonConvergence { .. }) if h / 2.0 >= opts.tstep_min => {
                        h /= 2.0;
                        tm.steps_rejected.incr();
                        tm.step_halvings.incr();
                    }
                    Err(SpiceError::NonConvergence { .. })
                        if t_next - sub_t <= 2.0 * opts.tstep_min =>
                    {
                        // The unconverged window cannot be subdivided any
                        // further and is below the resolvable step size:
                        // treat the target time as reached with the state
                        // from the last accepted point, instead of failing
                        // the whole transient over a sub-tolerance sliver.
                        tm.slivers_accepted.incr();
                        sub_t = t_next;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            remaining = t_next - sub_t;
        }
        t = t_next;
        if hit_breakpoint {
            force_be = true;
        }
    }

    Ok(TranResult {
        times,
        node_values,
        branch_values,
        node_names: sys.node_names.clone(),
        source_names: sys.vsources.iter().map(|v| v.name.clone()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksense_netlist::{MosParams, MosPolarity, SourceWave, GROUND};

    fn rc_circuit(r: f64, c: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("vin", inp, GROUND, SourceWave::step(0.0, 1.0, 0.0, 1e-13))
            .unwrap();
        ckt.add_resistor("r", inp, out, r).unwrap();
        ckt.add_capacitor("c", out, GROUND, c).unwrap();
        (ckt, out)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let (ckt, out) = rc_circuit(1e3, 1e-12); // tau = 1 ns
        let res = transient(&ckt, 5e-9, &SimOptions::default()).unwrap();
        let w = res.waveform(out);
        for frac in [0.5f64, 1.0, 2.0, 3.0] {
            let t = frac * 1e-9;
            let expect = 1.0 - (-frac).exp();
            let got = w.value_at(t + 1e-13); // offset by the source rise
            assert!(
                (got - expect).abs() < 5e-3,
                "at {frac} tau: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn backward_euler_also_converges_to_final_value() {
        let (ckt, out) = rc_circuit(1e3, 1e-12);
        let opts = SimOptions {
            method: IntegrationMethod::BackwardEuler,
            ..SimOptions::default()
        };
        let res = transient(&ckt, 10e-9, &opts).unwrap();
        assert!((res.waveform(out).value_at(10e-9) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn times_strictly_increase_and_hit_breakpoints() {
        let (ckt, _) = rc_circuit(1e3, 1e-12);
        let res = transient(&ckt, 2e-9, &SimOptions::default()).unwrap();
        let t = res.times();
        assert!(t.windows(2).all(|w| w[1] > w[0]));
        // The source has a breakpoint at 1e-13.
        assert!(t.iter().any(|&x| (x - 1e-13).abs() < 1e-15));
        assert!((t[t.len() - 1] - 2e-9).abs() < 1e-15);
    }

    #[test]
    fn cmos_inverter_switches_dynamically() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("vdd", vdd, GROUND, SourceWave::Dc(5.0))
            .unwrap();
        ckt.add_vsource(
            "vin",
            inp,
            GROUND,
            SourceWave::Pulse {
                v1: 0.0,
                v2: 5.0,
                delay: 1e-9,
                rise: 0.2e-9,
                fall: 0.2e-9,
                width: 2e-9,
                period: f64::INFINITY,
            },
        )
        .unwrap();
        let nmos = MosParams {
            vth0: 0.7,
            kp: 60e-6,
            lambda: 0.02,
            w: 4e-6,
            l: 1.2e-6,
            cgs: 3e-15,
            cgd: 3e-15,
            cdb: 4e-15,
        };
        let pmos = MosParams {
            vth0: -0.9,
            kp: 20e-6,
            lambda: 0.02,
            w: 10e-6,
            l: 1.2e-6,
            cgs: 7e-15,
            cgd: 7e-15,
            cdb: 9e-15,
        };
        ckt.add_mosfet("mp", MosPolarity::Pmos, out, inp, vdd, pmos)
            .unwrap();
        ckt.add_mosfet("mn", MosPolarity::Nmos, out, inp, GROUND, nmos)
            .unwrap();
        ckt.add_capacitor("cl", out, GROUND, 50e-15).unwrap();

        let res = transient(&ckt, 6e-9, &SimOptions::default()).unwrap();
        let w = res.waveform(out);
        assert!(w.value_at(0.9e-9) > 4.9, "output high before the pulse");
        assert!(w.value_at(2.5e-9) < 0.1, "output low during the pulse");
        assert!(w.value_at(5.8e-9) > 4.9, "output recovers after the pulse");
    }

    #[test]
    fn waveform_lookup_by_name_and_source_current() {
        let (ckt, _) = rc_circuit(1e3, 1e-12);
        let res = transient(&ckt, 1e-9, &SimOptions::default()).unwrap();
        assert!(res.waveform_named("out").is_some());
        assert!(res.waveform_named("nope").is_none());
        let i = res.source_current("vin").unwrap();
        // Right after the step the full 1 V sits across R: 1 mA leaves the
        // source (negative branch current by convention).
        assert!(i.value_at(2e-13) < -0.5e-3);
        assert!(res.source_current("nope").is_none());
    }

    #[test]
    fn final_sliver_below_tstep_min_is_accepted() {
        // A capacitor-free inverter whose supply *and* input snap from 0
        // to 5 V at 1 ps. The DC point and the pre-step window are
        // all-zero (one Newton iteration each), but the post-step window
        // needs more than `max_newton_iters = 3` iterations: the 2 V
        // damping clamp alone takes three updates to walk a pinned node
        // from 0 to 5 V. With `tstep_min` at 0.9 * tstep the failed
        // window cannot be halved either, so the remaining sliver used to
        // surface as `NonConvergence` even though the simulation had
        // already reached every resolvable time point. It must instead be
        // accepted as reached.
        let step_to = |v2: f64| SourceWave::Pulse {
            v1: 0.0,
            v2,
            delay: 1.0e-12,
            rise: 0.01e-12,
            fall: 0.2e-12,
            width: 1e-9,
            period: f64::INFINITY,
        };
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("vdd", vdd, GROUND, step_to(5.0)).unwrap();
        ckt.add_vsource("vin", inp, GROUND, step_to(5.0)).unwrap();
        let no_parasitics = MosParams {
            vth0: 0.7,
            kp: 60e-6,
            lambda: 0.02,
            w: 4e-6,
            l: 1.2e-6,
            cgs: 0.0,
            cgd: 0.0,
            cdb: 0.0,
        };
        ckt.add_mosfet(
            "mp",
            MosPolarity::Pmos,
            out,
            inp,
            vdd,
            MosParams {
                vth0: -0.9,
                kp: 20e-6,
                w: 10e-6,
                ..no_parasitics
            },
        )
        .unwrap();
        ckt.add_mosfet("mn", MosPolarity::Nmos, out, inp, GROUND, no_parasitics)
            .unwrap();

        let opts = SimOptions {
            tstep: 1e-12,
            tstep_min: 0.9e-12,
            max_newton_iters: 3,
            ..SimOptions::default()
        };
        let res = transient(&ckt, 2.5e-12, &opts).expect("sliver must be accepted, not fail");
        // The pre-step window converged; the post-step window is the
        // accepted sliver (no solvable point inside it).
        assert_eq!(res.times(), &[0.0, 1.0e-12]);
    }

    #[test]
    fn rejects_bad_t_stop() {
        let (ckt, _) = rc_circuit(1e3, 1e-12);
        assert!(transient(&ckt, 0.0, &SimOptions::default()).is_err());
        assert!(transient(&ckt, f64::NAN, &SimOptions::default()).is_err());
    }
}
