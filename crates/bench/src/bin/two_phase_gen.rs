//! The sensor against *generated* two-phase non-overlapping clocks.
//!
//! Every earlier experiment drove the sensing circuit with ideal,
//! hand-placed φ1/φ2 pulses. This bench swaps in the output of a
//! modeled two-phase non-overlap generator (`TwoPhaseSpec`):
//!
//! 1. **Generator honesty** — for a sweep of programmed margins (an
//!    overlapping, a tight and two comfortable generators) the
//!    threshold-crossing gap of the rendered waveforms is *measured* by
//!    sampling and compared against the closed-form
//!    `non_overlap + frac (rise + fall)`. Any disagreement beyond the
//!    sampling resolution counts into
//!    `two_phase_gen.margin_violations`, which the CI gate pins to 0.
//! 2. **Detection flip sweep** — for each margin, copies of the
//!    generated φ1 with injected skew drive the sensor test bench, and
//!    the minimum detected skew is located by bisection in both
//!    directions. The paper's claim that detection depends on edge
//!    timing, not on the idle gap, shows up directly: the flip
//!    threshold stays put while the margin varies by 5x.
//!
//! `--report <path>` archives margins, gaps and flip thresholds.

use clocksense_bench::{print_header, ps, scaled, Table};
use clocksense_core::{interpret, SensorBuilder, SkewVerdict, Technology};
use clocksense_scenarios::TwoPhaseSpec;
use clocksense_spice::{transient, SimOptions, SolverKind};

/// The sensor's verdict for `skew` injected between two copies of the
/// generated phase-1 train.
fn verdict_at(
    sensor: &clocksense_core::SensingCircuit,
    spec: &TwoPhaseSpec,
    skew: f64,
    opts: &SimOptions,
) -> SkewVerdict {
    let tele = clocksense_telemetry::global().scope("two_phase_gen");
    let (phi1, phi2) = spec.sensor_pair(skew).expect("skew in range");
    let bench = sensor
        .testbench_with_waves(phi1, phi2)
        .expect("bench builds");
    let clocks = spec.clock_pair(skew);
    let result = transient(&bench, clocks.sim_stop_time(), opts).expect("bench transient");
    let (y1, y2) = sensor.outputs();
    tele.counter("sims_total").incr();
    interpret(
        result.waveform(y1),
        result.waveform(y2),
        &clocks,
        sensor.edge(),
        sensor.technology().logic_threshold(),
    )
    .verdict
}

/// Bisects the smallest |skew| (of `sign`) the sensor flags, between 0
/// and half the phase width.
fn flip_threshold(
    sensor: &clocksense_core::SensingCircuit,
    spec: &TwoPhaseSpec,
    sign: f64,
    iters: usize,
    opts: &SimOptions,
) -> f64 {
    let mut lo = 0.0;
    let mut hi = 0.5 * spec.width;
    assert!(
        verdict_at(sensor, spec, sign * hi, opts).is_error(),
        "sweep ceiling {} must be detectable",
        ps(hi)
    );
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        if verdict_at(sensor, spec, sign * mid, opts).is_error() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

fn main() {
    let bench = clocksense_bench::report::start("two_phase_gen");
    let tele = &bench.tele;
    let tech = Technology::cmos12();
    let sensor = SensorBuilder::new(tech)
        .load_capacitance(80e-15)
        .build()
        .expect("valid sensor");
    let opts = SimOptions {
        solver: SolverKind::Sparse,
        tstep: 2e-12,
        ..SimOptions::default()
    };

    // One broken (overlapping) generator, one tight, two comfortable.
    let margins = [-0.12e-9, 0.05e-9, 0.15e-9, 0.25e-9];
    let iters = scaled(10, 5);

    print_header("Two-phase generator gap: measured vs analytic");
    let mut gap_table = Table::new(&["margin", "frac", "analytic gap", "measured gap", "error"]);
    let mut violations = 0u64;
    for &margin in &margins {
        let spec = TwoPhaseSpec::new(tech.vdd, margin);
        for frac in [0.3, 0.5, 0.7] {
            let analytic = spec.analytic_gap(frac);
            let measured = spec.measured_gap(frac).expect("valid generator");
            let err = (measured - analytic).abs();
            tele.counter("margin_checks").incr();
            // The sampling cross-check resolves ~0.2 ps; anything past
            // 1 ps means the generator's closed form is wrong.
            if err > 1e-12 {
                violations += 1;
            }
            gap_table.row(&[
                ps(margin),
                format!("{frac:.1}"),
                ps(analytic),
                ps(measured),
                ps(err),
            ]);
        }
    }
    println!("{}", gap_table.render());
    tele.counter("margin_violations").add(violations);
    assert_eq!(violations, 0, "generator gap model disagrees with render");

    print_header("Detection flip threshold vs generator margin");
    let mut flip_table = Table::new(&["margin", "period", "flip +skew", "flip -skew"]);
    let mut thresholds = Vec::new();
    for &margin in &margins {
        let spec = TwoPhaseSpec::new(tech.vdd, margin);
        let up = flip_threshold(&sensor, &spec, 1.0, iters, &opts);
        let down = flip_threshold(&sensor, &spec, -1.0, iters, &opts);
        tele.counter("flip_points_located").add(2);
        thresholds.push(up);
        flip_table.row(&[ps(margin), ps(spec.period()), ps(up), ps(down)]);
    }
    println!("{}", flip_table.render());

    // The flip threshold is a property of the sensor and the edges, not
    // of the generator margin: across a 5x margin sweep it must not
    // move by more than the bisection resolution.
    let lo = thresholds.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = thresholds.iter().cloned().fold(0.0f64, f64::max);
    let resolution = 0.5 * TwoPhaseSpec::new(tech.vdd, 0.0).width / (1u64 << iters) as f64;
    assert!(
        hi - lo <= 2.0 * resolution + 1e-12,
        "flip threshold moved with margin: {} .. {}",
        ps(lo),
        ps(hi)
    );
    tele.counter("threshold_spread_fs")
        .add(((hi - lo) * 1e15) as u64);

    bench.finish();
}
