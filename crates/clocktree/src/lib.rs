//! Clock distribution substrate: RC trees, Elmore delay, H-trees, buffer
//! insertion and zero-skew routing.
//!
//! The paper's sensing circuit monitors wires of a clock distribution
//! network; this crate builds that network. It provides:
//!
//! * [`RcTree`] — a distributed-RC clock net with Elmore delay analysis
//!   and an O(n)-per-step implicit transient solver (tree-structured
//!   Gaussian elimination), so whole distribution networks simulate in
//!   linear time where the dense MNA engine would cost O(n³);
//! * [`HTree`] — the classic symmetric H-tree topology generator;
//! * [`BufferModel`] / [`BufferedTree`] — hierarchical buffered
//!   distribution, the "buffers driving optimized interconnection
//!   networks" the paper describes;
//! * [`zero_skew_tree`] — a deferred-merge zero-skew router after Chao et
//!   al. (the paper's reference \[3\] baseline), balancing Elmore delays
//!   exactly at every merge;
//! * [`SkewAnalysis`] and [`plan_sensor_pairs`] — skew analysis and the
//!   paper's two sensor-placement criteria (skew-critical and physically
//!   close);
//! * fault and variation injection at tree level (resistive opens,
//!   parameter variation, crosstalk coupling), producing the degraded
//!   clock waveforms the sensing circuit must flag.
//!
//! # Examples
//!
//! ```
//! use clocksense_clocktree::{HTree, WireParasitics};
//!
//! let htree = HTree::new(3, 4e-3, WireParasitics::metal2());
//! let tree = htree.to_rc_tree(40e-15);
//! let delays = tree.elmore_delays(100.0);
//! let sinks = htree.sink_nodes();
//! // A fault-free H-tree is balanced: all sink delays agree.
//! let d0 = delays[sinks[0].index()];
//! assert!(sinks.iter().all(|&s| (delays[s.index()] - d0).abs() < 1e-15));
//! ```

mod buffer;
mod dme;
mod error;
mod geometry;
mod grid;
mod htree;
mod rctree;
mod skew;
mod variation;

pub use buffer::{insert_buffers, BufferModel, BufferedTree, StageId};
pub use dme::{zero_skew_tree, Sink, ZstResult};
pub use error::ClockTreeError;
pub use geometry::Point;
pub use grid::{GridPlan, TrixPlan};
pub use htree::{HTree, WireParasitics};
pub use rctree::{RcNodeId, RcTree, TreeTransient};
pub use skew::{plan_sensor_pairs, transient_arrivals, PairPlan, SensorPairCriteria, SkewAnalysis};
pub use variation::{Aggressor, TreeFault, TreeVariation};
