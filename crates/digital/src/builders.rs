//! Convenience constructors for common synchronous structures.

use crate::network::{DigitalError, GateKind, GateNetwork, NetId};

/// Timing of the flip-flops used by the builders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FfTiming {
    /// Clock-to-Q delay (s).
    pub clk_to_q: f64,
    /// Setup time (s).
    pub setup: f64,
}

impl Default for FfTiming {
    fn default() -> Self {
        FfTiming {
            clk_to_q: 0.4e-9,
            setup: 0.2e-9,
        }
    }
}

/// Builds an `stages`-deep shift register clocked by `clk`; returns the
/// per-stage outputs in order.
///
/// # Errors
///
/// Propagates construction errors (dangling nets, bad timing).
///
/// # Examples
///
/// ```
/// use clocksense_digital::{shift_register, FfTiming, GateNetwork, Schedule};
///
/// # fn main() -> Result<(), clocksense_digital::DigitalError> {
/// let mut net = GateNetwork::new();
/// let clk = net.input("clk", Schedule::clock(1e-9, 1e-9, 6));
/// let d = net.input("d", Schedule::from_edges(false, &[(0.5e-9, true), (1.5e-9, false)]));
/// let taps = shift_register(&mut net, d, clk, 3, FfTiming::default())?;
/// let run = net.simulate(14e-9)?;
/// // The lone 1 reaches the last stage after three edges (1, 3, 5 ns).
/// assert_eq!(run.value_at(taps[2], 6.0e-9), Some(true));
/// # Ok(())
/// # }
/// ```
pub fn shift_register(
    net: &mut GateNetwork,
    d: NetId,
    clk: NetId,
    stages: usize,
    timing: FfTiming,
) -> Result<Vec<NetId>, DigitalError> {
    let mut taps = Vec::with_capacity(stages);
    let mut cur = d;
    for _ in 0..stages {
        cur = net.dff(cur, clk, timing.clk_to_q, timing.setup, Some(false))?;
        taps.push(cur);
    }
    Ok(taps)
}

/// Builds a `bits`-wide ripple counter clocked by `clk`; returns the bit
/// outputs, least significant first.
///
/// Each stage is a toggle flip-flop (D tied to its own inverted output);
/// the next stage is clocked by the previous stage's inverted output, so
/// it advances when the previous bit falls — a binary up-counter.
///
/// # Errors
///
/// Propagates construction errors.
pub fn ripple_counter(
    net: &mut GateNetwork,
    clk: NetId,
    bits: usize,
    timing: FfTiming,
) -> Result<Vec<NetId>, DigitalError> {
    let mut outputs = Vec::with_capacity(bits);
    let mut stage_clk = clk;
    for b in 0..bits {
        let d = net.placeholder(&format!("cnt{b}_d"));
        let q = net.dff(d, stage_clk, timing.clk_to_q, timing.setup, Some(false))?;
        let qb = net.gate(GateKind::Not, &[q], 0.1e-9)?;
        net.connect(d, qb)?;
        outputs.push(q);
        stage_clk = qb;
    }
    Ok(outputs)
}

/// Builds a bitwise equality comparator: output is `1` iff `a == b`.
///
/// # Errors
///
/// Returns [`DigitalError::BadArity`] for empty or mismatched operand
/// widths, plus construction errors.
pub fn equality_comparator(
    net: &mut GateNetwork,
    a: &[NetId],
    b: &[NetId],
    gate_delay: f64,
) -> Result<NetId, DigitalError> {
    if a.is_empty() || a.len() != b.len() {
        return Err(DigitalError::BadArity {
            kind: "equality comparator".to_string(),
            got: a.len().min(b.len()),
        });
    }
    let mut terms = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        terms.push(net.gate(GateKind::Xnor, &[x, y], gate_delay)?);
    }
    if terms.len() == 1 {
        return Ok(terms[0]);
    }
    net.gate(GateKind::And, &terms, gate_delay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Schedule;

    #[test]
    fn counter_counts_in_binary() {
        let mut net = GateNetwork::new();
        // 8 clock pulses, period 2 ns.
        let clk = net.input("clk", Schedule::clock(1e-9, 1e-9, 8));
        let bits = ripple_counter(&mut net, clk, 3, FfTiming::default()).unwrap();
        let run = net.simulate(20e-9).unwrap();
        // After k rising edges the counter holds k (mod 8). Edge k lands
        // at (2k - 1) ns and the ripple needs up to 1.5 ns to settle, so
        // sample just before the next edge.
        for k in 1..=8u32 {
            let t = (2 * k) as f64 * 1e-9 + 0.9e-9;
            let mut value = 0u32;
            for (i, &bit) in bits.iter().enumerate() {
                if run.value_at(bit, t) == Some(true) {
                    value |= 1 << i;
                }
            }
            assert_eq!(value, k % 8, "after edge {k}");
        }
    }

    #[test]
    fn shift_register_depth_matches() {
        let mut net = GateNetwork::new();
        let clk = net.input("clk", Schedule::clock(1e-9, 1e-9, 8));
        let d = net.input(
            "d",
            Schedule::from_edges(false, &[(0.5e-9, true), (1.5e-9, false)]),
        );
        let taps = shift_register(&mut net, d, clk, 4, FfTiming::default()).unwrap();
        let run = net.simulate(18e-9).unwrap();
        // The pulse appears at tap k after edge k+1 (edges at 1,3,5,7 ns).
        for (k, &tap) in taps.iter().enumerate() {
            let t_after = (2 * k + 2) as f64 * 1e-9;
            assert_eq!(run.value_at(tap, t_after), Some(true), "tap {k}");
            let t_late = (2 * k + 4) as f64 * 1e-9;
            assert_eq!(run.value_at(tap, t_late), Some(false), "tap {k} cleared");
        }
        assert!(run.violations().is_empty());
    }

    #[test]
    fn comparator_flags_equality() {
        let mut net = GateNetwork::new();
        let a0 = net.input("a0", Schedule::constant(true));
        let a1 = net.input("a1", Schedule::constant(false));
        let b0 = net.input("b0", Schedule::constant(true));
        let b1 = net.input("b1", Schedule::from_edges(false, &[(2e-9, true)]));
        let eq = equality_comparator(&mut net, &[a0, a1], &[b0, b1], 0.2e-9).unwrap();
        let run = net.simulate(6e-9).unwrap();
        assert_eq!(run.value_at(eq, 1e-9), Some(true), "equal before the edge");
        assert_eq!(run.value_at(eq, 4e-9), Some(false), "b1 diverged");
    }

    #[test]
    fn comparator_rejects_bad_widths() {
        let mut net = GateNetwork::new();
        let a = net.input("a", Schedule::constant(true));
        assert!(matches!(
            equality_comparator(&mut net, &[], &[], 0.1e-9),
            Err(DigitalError::BadArity { .. })
        ));
        assert!(matches!(
            equality_comparator(&mut net, &[a], &[a, a], 0.1e-9),
            Err(DigitalError::BadArity { .. })
        ));
    }
}
