//! Generated two-phase non-overlapping clocks.
//!
//! The sensing circuit was characterized against *ideal* φ1/φ2 pulses
//! placed by hand. A real two-phase system derives both phases from one
//! master clock through a non-overlap generator, and the guaranteed gap
//! between φ1 falling and φ2 rising (and vice versa) is a design
//! parameter. [`TwoPhaseSpec`] models that generator's output directly:
//! two complementary-phase pulse trains with a programmable non-overlap
//! margin and independent rise/fall times, plus the analytic gap the
//! parameters imply — so sweeps can ask "at what injected skew does the
//! sensor flip, as a function of the generator's own margin?".

use clocksense_core::ClockPair;
use clocksense_netlist::SourceWave;

use crate::error::ScenarioError;

/// A programmable two-phase non-overlap clock generator.
///
/// Phase 1 rises at `delay`; phase 2 is the same shape offset by half a
/// period, where the period is `2 * (rise + width + fall + non_overlap)`
/// — so consecutive active intervals of opposite phases are separated
/// by exactly `non_overlap` seconds of full-swing gap (corner to
/// corner; the *threshold-crossing* gap is larger by a slice of the
/// edges, see [`analytic_gap`](TwoPhaseSpec::analytic_gap)).
///
/// # Examples
///
/// ```
/// use clocksense_scenarios::TwoPhaseSpec;
///
/// let spec = TwoPhaseSpec::new(5.0, 0.15e-9);
/// let (phi1, phi2) = spec.waveforms().unwrap();
/// assert!(phi1.is_well_formed() && phi2.is_well_formed());
/// let gap = spec.analytic_gap(0.5);
/// assert!((gap - spec.non_overlap - 0.5 * (spec.rise + spec.fall)).abs() < 1e-21);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPhaseSpec {
    /// Swing of both phases (V).
    pub vdd: f64,
    /// First rising corner of φ1 (s).
    pub delay: f64,
    /// Rise time of both phases (s).
    pub rise: f64,
    /// Fall time of both phases (s).
    pub fall: f64,
    /// High width of both phases (s).
    pub width: f64,
    /// Corner-to-corner gap between opposite-phase active intervals
    /// (s). May be negative to model an *overlapping* (broken)
    /// generator, down to `-(rise + width + fall) / 2`.
    pub non_overlap: f64,
}

impl TwoPhaseSpec {
    /// A generator with 100 ps edges, 1.2 ns high phases, first edge at
    /// 200 ps and the given swing and margin.
    pub fn new(vdd: f64, non_overlap: f64) -> TwoPhaseSpec {
        TwoPhaseSpec {
            vdd,
            delay: 0.2e-9,
            rise: 0.1e-9,
            fall: 0.1e-9,
            width: 1.2e-9,
            non_overlap,
        }
    }

    /// φ2's offset from φ1: half the period.
    pub fn phase_offset(&self) -> f64 {
        self.rise + self.width + self.fall + self.non_overlap
    }

    /// The full cycle period implied by the parameters.
    pub fn period(&self) -> f64 {
        2.0 * self.phase_offset()
    }

    /// Validates the parameter domain.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidParameter`] unless `vdd`, `rise`,
    /// `fall` and `width` are positive, `delay` is non-negative, and
    /// the (possibly negative) margin still leaves a positive period
    /// slack — i.e. `period > rise + width + fall`.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        for (name, v) in [
            ("vdd", self.vdd),
            ("rise", self.rise),
            ("fall", self.fall),
            ("width", self.width),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ScenarioError::InvalidParameter(format!(
                    "two-phase {name} must be positive, got {v}"
                )));
            }
        }
        if !(self.delay.is_finite() && self.delay >= 0.0) {
            return Err(ScenarioError::InvalidParameter(format!(
                "two-phase delay must be non-negative, got {}",
                self.delay
            )));
        }
        if !self.non_overlap.is_finite() {
            return Err(ScenarioError::InvalidParameter(
                "two-phase non_overlap must be finite".into(),
            ));
        }
        let active = self.rise + self.width + self.fall;
        if self.period() <= active {
            return Err(ScenarioError::InvalidParameter(format!(
                "non_overlap {} makes the period ({}) shorter than one \
                 active interval ({})",
                self.non_overlap,
                self.period(),
                active
            )));
        }
        Ok(())
    }

    /// The generator's two output trains as periodic pulse waves.
    ///
    /// # Errors
    ///
    /// See [`TwoPhaseSpec::validate`].
    pub fn waveforms(&self) -> Result<(SourceWave, SourceWave), ScenarioError> {
        self.validate()?;
        let mk = |delay: f64| SourceWave::Pulse {
            v1: 0.0,
            v2: self.vdd,
            delay,
            rise: self.rise,
            fall: self.fall,
            width: self.width,
            period: self.period(),
        };
        Ok((mk(self.delay), mk(self.delay + self.phase_offset())))
    }

    /// The gap between φ1 crossing `frac * vdd` on its falling edge and
    /// φ2 crossing the same level on its next rising edge, from the
    /// corner geometry: φ1 falls through the level `fall * (1 - frac)`
    /// after its fall corner starts, φ2 rises through it `rise * frac`
    /// after its rise corner starts, and the two corners are
    /// `fall + non_overlap` apart — which collapses to
    /// `non_overlap + frac * (rise + fall)`. Negative when the phases
    /// overlap at that threshold.
    pub fn analytic_gap(&self, frac: f64) -> f64 {
        self.non_overlap + frac * (self.rise + self.fall)
    }

    /// Measures the φ1-fall → φ2-rise gap at level `frac * vdd` by
    /// densely sampling the rendered waveforms over one period — the
    /// slow, independent cross-check the property tests compare against
    /// [`TwoPhaseSpec::analytic_gap`].
    ///
    /// # Errors
    ///
    /// See [`TwoPhaseSpec::validate`].
    pub fn measured_gap(&self, frac: f64) -> Result<f64, ScenarioError> {
        let (phi1, phi2) = self.waveforms()?;
        let level = frac * self.vdd;
        // φ1's first falling corner; φ2's following rising corner.
        let fall_start = self.delay + self.rise + self.width;
        let rise_start = self.delay + self.phase_offset();
        let cross = |wave: &SourceWave, from: f64, to: f64, rising: bool| -> Option<f64> {
            const STEPS: usize = 20_000;
            let dt = (to - from) / STEPS as f64;
            let mut prev = wave.value_at(from);
            for i in 1..=STEPS {
                let t = from + i as f64 * dt;
                let v = wave.value_at(t);
                let hit = if rising {
                    prev < level && v >= level
                } else {
                    prev > level && v <= level
                };
                if hit {
                    // Linear interpolation inside the sample step.
                    let f = (level - prev) / (v - prev);
                    return Some(t - dt + f * dt);
                }
                prev = v;
            }
            None
        };
        let span = self.rise + self.fall + self.width;
        let t_fall = cross(&phi1, fall_start - span, fall_start + span, false)
            .ok_or_else(|| ScenarioError::InvalidParameter("no φ1 falling crossing".into()))?;
        let t_rise = cross(&phi2, rise_start - span, rise_start + span, true)
            .ok_or_else(|| ScenarioError::InvalidParameter("no φ2 rising crossing".into()))?;
        Ok(t_rise - t_fall)
    }

    /// A skewed sensing pair derived from phase 1: the sensor's two
    /// inputs are copies of φ1 with `skew` injected between them
    /// (positive skew delays the second copy). This is the stimulus for
    /// "sweep injected skew against a *generated* clock" experiments.
    ///
    /// # Errors
    ///
    /// See [`TwoPhaseSpec::validate`].
    pub fn sensor_pair(&self, skew: f64) -> Result<(SourceWave, SourceWave), ScenarioError> {
        self.validate()?;
        if !skew.is_finite() || skew.abs() >= self.width {
            return Err(ScenarioError::InvalidParameter(format!(
                "sensor skew {} must be smaller than the width {}",
                skew, self.width
            )));
        }
        let d1 = self.delay + (-skew).max(0.0);
        let d2 = self.delay + skew.max(0.0);
        let mk = |delay: f64| SourceWave::Pulse {
            v1: 0.0,
            v2: self.vdd,
            delay,
            rise: self.rise,
            fall: self.fall,
            width: self.width,
            period: self.period(),
        };
        Ok((mk(d1), mk(d2)))
    }

    /// The [`ClockPair`] describing [`sensor_pair`](Self::sensor_pair)'s
    /// timing, so [`interpret`](clocksense_core::interpret) strobes the
    /// right windows. The pair's `slew` is the rise time (the active
    /// edge of a rising-edge strobe).
    pub fn clock_pair(&self, skew: f64) -> ClockPair {
        ClockPair {
            vdd: self.vdd,
            delay: self.delay,
            slew: self.rise,
            width: self.width,
            period: self.period(),
            skew,
        }
    }

    /// A stop time covering the first full cycle of both phases.
    pub fn sim_stop_time(&self) -> f64 {
        self.delay + self.period() + self.rise
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_gap_matches_analytic_across_margins() {
        for non_overlap in [0.05e-9, 0.15e-9, 0.4e-9] {
            let spec = TwoPhaseSpec::new(5.0, non_overlap);
            for frac in [0.3, 0.5, 0.7] {
                let analytic = spec.analytic_gap(frac);
                let measured = spec.measured_gap(frac).unwrap();
                assert!(
                    (measured - analytic).abs() < 2e-13,
                    "margin {non_overlap}, frac {frac}: measured {measured} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn negative_margin_overlaps_at_threshold() {
        let spec = TwoPhaseSpec::new(5.0, -0.12e-9);
        spec.validate().unwrap();
        let gap = spec.measured_gap(0.5).unwrap();
        assert!(gap < 0.0, "expected overlap, got gap {gap}");
        assert!((gap - spec.analytic_gap(0.5)).abs() < 2e-13);
    }

    #[test]
    fn period_floor_is_enforced() {
        // non_overlap <= -(rise+width+fall)/2 collapses the period.
        let spec = TwoPhaseSpec::new(5.0, -0.75e-9);
        assert!(spec.validate().is_err());
        assert!(TwoPhaseSpec::new(-5.0, 0.1e-9).validate().is_err());
    }

    #[test]
    fn sensor_pair_injects_the_requested_skew() {
        let spec = TwoPhaseSpec::new(5.0, 0.1e-9);
        let (a, b) = spec.sensor_pair(40e-12).unwrap();
        match (a, b) {
            (SourceWave::Pulse { delay: d1, .. }, SourceWave::Pulse { delay: d2, .. }) => {
                assert!((d2 - d1 - 40e-12).abs() < 1e-21)
            }
            other => panic!("expected pulses, got {other:?}"),
        }
        assert!(spec.sensor_pair(2e-9).is_err());
        let pair = spec.clock_pair(40e-12);
        pair.validate().unwrap();
    }
}
