//! Hierarchical composition: stamping one circuit into another.

use std::collections::HashMap;

use crate::circuit::{Circuit, DeviceId};
use crate::device::Device;
use crate::error::NetlistError;
use crate::node::{NodeId, GROUND};

/// Mapping from subcircuit node names to nodes of the enclosing circuit.
///
/// Built with [`PortMap::new`] and [`PortMap::map`]; consumed by
/// [`instantiate`].
///
/// # Examples
///
/// ```
/// use clocksense_netlist::{Circuit, PortMap, instantiate, GROUND, SourceWave};
///
/// # fn main() -> Result<(), clocksense_netlist::NetlistError> {
/// let mut sub = Circuit::new();
/// let p = sub.node("in");
/// let q = sub.node("out");
/// sub.add_resistor("r", p, q, 1_000.0)?;
///
/// let mut top = Circuit::new();
/// let a = top.node("a");
/// top.add_vsource("v", a, GROUND, SourceWave::Dc(1.0))?;
/// let ids = instantiate(&mut top, &sub, "u1", PortMap::new().map("in", a))?;
/// assert_eq!(ids.len(), 1);
/// assert!(top.find_node("u1.out").is_some()); // internal node got prefixed
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PortMap {
    bindings: Vec<(String, NodeId)>,
}

impl PortMap {
    /// Creates an empty port map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds the subcircuit node named `port` to `node` in the parent.
    #[must_use]
    pub fn map(mut self, port: &str, node: NodeId) -> Self {
        self.bindings.push((port.to_string(), node));
        self
    }

    /// Returns the bound ports as `(name, node)` pairs.
    pub fn bindings(&self) -> &[(String, NodeId)] {
        &self.bindings
    }
}

/// Copies every device of `sub` into `target`.
///
/// Subcircuit nodes listed in `ports` are merged with the given parent
/// nodes; the subcircuit ground always maps to the parent ground; every
/// other node and every device name is prefixed with `"{prefix}."` to keep
/// names unique across instances.
///
/// Returns the ids of the devices created in `target`, in the iteration
/// order of `sub.devices()`.
///
/// # Errors
///
/// Returns [`NetlistError::UnknownPort`] if a port name is not a node of
/// `sub`, and propagates [`NetlistError::DuplicateDevice`] if a prefixed
/// device name collides (i.e. the same prefix was used twice).
pub fn instantiate(
    target: &mut Circuit,
    sub: &Circuit,
    prefix: &str,
    ports: PortMap,
) -> Result<Vec<DeviceId>, NetlistError> {
    let mut node_map: HashMap<NodeId, NodeId> = HashMap::new();
    node_map.insert(GROUND, GROUND);
    for (port, parent_node) in ports.bindings() {
        let sub_node = sub
            .find_node(port)
            .ok_or_else(|| NetlistError::UnknownPort(port.clone()))?;
        node_map.insert(sub_node, *parent_node);
    }
    let mut resolve = |target: &mut Circuit, n: NodeId| -> NodeId {
        if let Some(&mapped) = node_map.get(&n) {
            return mapped;
        }
        let name = format!("{prefix}.{}", sub.node_name(n));
        let mapped = target.node(&name);
        node_map.insert(n, mapped);
        mapped
    };

    let mut created = Vec::new();
    for (_, entry) in sub.devices() {
        let name = format!("{prefix}.{}", entry.name);
        let id = match &entry.device {
            Device::Resistor(r) => {
                let a = resolve(target, r.a);
                let b = resolve(target, r.b);
                target.add_resistor(&name, a, b, r.ohms)?
            }
            Device::Capacitor(c) => {
                let a = resolve(target, c.a);
                let b = resolve(target, c.b);
                target.add_capacitor(&name, a, b, c.farads)?
            }
            Device::VoltageSource(v) => {
                let plus = resolve(target, v.plus);
                let minus = resolve(target, v.minus);
                target.add_vsource(&name, plus, minus, v.wave.clone())?
            }
            Device::CurrentSource(i) => {
                let from = resolve(target, i.from);
                let to = resolve(target, i.to);
                target.add_isource(&name, from, to, i.wave.clone())?
            }
            Device::Mosfet(m) => {
                let d = resolve(target, m.drain);
                let g = resolve(target, m.gate);
                let s = resolve(target, m.source);
                target.add_mosfet(&name, m.polarity, d, g, s, m.params)?
            }
        };
        created.push(id);
    }
    Ok(created)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::SourceWave;

    fn divider() -> Circuit {
        let mut sub = Circuit::new();
        let top = sub.node("top");
        let mid = sub.node("mid");
        sub.add_resistor("r1", top, mid, 1_000.0).unwrap();
        sub.add_resistor("r2", mid, GROUND, 1_000.0).unwrap();
        sub
    }

    #[test]
    fn ports_merge_and_internals_prefix() {
        let sub = divider();
        let mut top = Circuit::new();
        let vin = top.node("vin");
        top.add_vsource("v", vin, GROUND, SourceWave::Dc(2.0))
            .unwrap();
        let ids = instantiate(&mut top, &sub, "u1", PortMap::new().map("top", vin)).unwrap();
        assert_eq!(ids.len(), 2);
        assert!(top.find_device("u1.r1").is_some());
        assert!(top.find_node("u1.mid").is_some());
        assert!(top.find_node("u1.top").is_none(), "port node must merge");
        top.validate().unwrap();
    }

    #[test]
    fn two_instances_coexist() {
        let sub = divider();
        let mut top = Circuit::new();
        let vin = top.node("vin");
        top.add_vsource("v", vin, GROUND, SourceWave::Dc(2.0))
            .unwrap();
        instantiate(&mut top, &sub, "u1", PortMap::new().map("top", vin)).unwrap();
        instantiate(&mut top, &sub, "u2", PortMap::new().map("top", vin)).unwrap();
        assert_eq!(top.device_count(), 5);
        assert_ne!(top.find_node("u1.mid"), top.find_node("u2.mid"));
    }

    #[test]
    fn unknown_port_is_an_error() {
        let sub = divider();
        let mut top = Circuit::new();
        let vin = top.node("vin");
        let err = instantiate(&mut top, &sub, "u1", PortMap::new().map("nope", vin)).unwrap_err();
        assert_eq!(err, NetlistError::UnknownPort("nope".into()));
    }

    #[test]
    fn duplicate_prefix_is_an_error() {
        let sub = divider();
        let mut top = Circuit::new();
        let vin = top.node("vin");
        instantiate(&mut top, &sub, "u1", PortMap::new().map("top", vin)).unwrap();
        let err = instantiate(&mut top, &sub, "u1", PortMap::new().map("top", vin)).unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateDevice(_)));
    }

    #[test]
    fn ground_maps_to_ground() {
        let sub = divider();
        let mut top = Circuit::new();
        let vin = top.node("vin");
        top.add_vsource("v", vin, GROUND, SourceWave::Dc(2.0))
            .unwrap();
        instantiate(&mut top, &sub, "u1", PortMap::new().map("top", vin)).unwrap();
        // r2's lower terminal must be the parent's ground, not "u1.0".
        assert!(top.find_node("u1.0").is_none());
        top.validate().unwrap();
    }
}
