//! Distribution of the sensitivity τ_min under process variation.
//!
//! This is the mechanism behind the paper's Tab. 1: every perturbed die
//! has its *own* sensitivity, and a sampled skew between the fastest and
//! slowest die's τ_min is classified differently by different dies. The
//! distribution quantifies how wide that ambiguous band is.

use clocksense_core::{find_tau_min, ClockPair, CoreError, SensorBuilder};
use clocksense_exec::Executor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiment::McConfig;
use crate::perturb::perturb_circuit_global;

/// Summary statistics of a τ_min population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauMinDistribution {
    /// Smallest observed sensitivity (s).
    pub min: f64,
    /// Mean sensitivity (s).
    pub mean: f64,
    /// Largest observed sensitivity (s).
    pub max: f64,
    /// Sample standard deviation (s).
    pub std_dev: f64,
    /// Number of samples that were detectable within the search range.
    pub n: usize,
}

impl TauMinDistribution {
    /// Computes the summary of a non-empty sample set.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0).max(1.0);
        TauMinDistribution {
            min: samples.iter().cloned().fold(f64::MAX, f64::min),
            mean,
            max: samples.iter().cloned().fold(f64::MIN, f64::max),
            std_dev: var.sqrt(),
            n,
        }
    }
}

/// Measures each perturbed die's own τ_min by bisection, for `n` samples.
///
/// Returns the raw per-die sensitivities (skipping dies whose τ_min lies
/// beyond `tau_hi`) in sample order.
///
/// # Errors
///
/// Propagates construction and simulation errors; rejects a non-positive
/// `tau_hi`.
pub fn tau_min_samples(
    builder: &SensorBuilder,
    clocks: &ClockPair,
    tau_hi: f64,
    n: usize,
    cfg: &McConfig,
) -> Result<Vec<f64>, CoreError> {
    if !(tau_hi.is_finite() && tau_hi > 0.0) {
        return Err(CoreError::InvalidParameter(format!(
            "tau_hi must be positive, got {tau_hi}"
        )));
    }
    let tele = clocksense_telemetry::global()
        .scope("montecarlo")
        .scope("tau_min");
    let outcomes = Executor::new(cfg.threads).with_telemetry(tele).run(n, |i| {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x2545f4914f6cdd1d) ^ i as u64);
        let mut sensor = builder.build()?;
        perturb_circuit_global(sensor.circuit_mut(), cfg.spread, &["cl1", "cl2"], &mut rng);
        find_tau_min(&sensor, clocks, tau_hi, 2e-12, &cfg.sim)
    });
    let mut out = Vec::with_capacity(n);
    for outcome in outcomes {
        match outcome {
            Ok(per_die) => {
                if let Some(tau) = per_die? {
                    out.push(tau);
                }
            }
            Err(panic) => return Err(CoreError::WorkerPanic(panic.message)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksense_core::Technology;
    use clocksense_spice::SimOptions;

    #[test]
    fn distribution_summary_is_consistent() {
        let d = TauMinDistribution::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 3.0);
        assert!((d.mean - 2.0).abs() < 1e-12);
        assert!((d.std_dev - 1.0).abs() < 1e-12);
        assert_eq!(d.n, 3);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_summary_panics() {
        TauMinDistribution::from_samples(&[]);
    }

    #[test]
    fn tau_min_spreads_under_variation() {
        let tech = Technology::cmos12();
        let builder = SensorBuilder::new(tech).load_capacitance(160e-15);
        let clocks = ClockPair::single_shot(tech.vdd, 0.2e-9);
        let cfg = McConfig {
            samples: 0, // unused here
            sim: SimOptions {
                tstep: 4e-12,
                ..SimOptions::default()
            },
            ..McConfig::default()
        };
        let samples = tau_min_samples(&builder, &clocks, 0.6e-9, 6, &cfg).unwrap();
        assert!(samples.len() >= 4, "most dies must be detectable");
        let d = TauMinDistribution::from_samples(&samples);
        // The nominal sits near 112 ps; variation spreads it but keeps it
        // within a physically sensible band.
        assert!(d.min > 30e-12 && d.max < 350e-12, "{d:?}");
        assert!(d.max > d.min, "variation must spread tau_min");
    }

    #[test]
    fn invalid_range_rejected() {
        let tech = Technology::cmos12();
        let builder = SensorBuilder::new(tech);
        let clocks = ClockPair::single_shot(tech.vdd, 0.2e-9);
        let cfg = McConfig::default();
        assert!(tau_min_samples(&builder, &clocks, -1.0, 2, &cfg).is_err());
    }
}
