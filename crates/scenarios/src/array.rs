//! Grafting sensing circuits into a host deck — the sensor-array layer.
//!
//! The paper's scheme attaches one sensing circuit per monitored couple
//! of clock wires. The earlier experiments simulated each sensor in its
//! own test bench against waveforms extracted from a tree solve; an
//! array deck instead grafts every sensor *into the distribution
//! netlist itself*, so the whole arrangement — grid, drivers and N
//! sensors — is one circuit through one (batched) transient. MOSFET
//! gates draw no DC current in the Level-1 model and present only their
//! fixed gate capacitances, so a grafted sensor loads its taps like the
//! small routing stub it physically is.

use clocksense_core::SensingCircuit;
use clocksense_netlist::{Circuit, Device, NodeId, GROUND};

use crate::error::ScenarioError;

/// Where one grafted sensor ended up inside the host deck.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SensorTap {
    /// The name prefix of every node and device of this instance.
    pub prefix: String,
    /// Host-deck node name of the sensor's `y1` output.
    pub y1: String,
    /// Host-deck node name of the sensor's `y2` output.
    pub y2: String,
    /// Host-deck node name monitored as `φ1`.
    pub phi1: String,
    /// Host-deck node name monitored as `φ2`.
    pub phi2: String,
}

/// Copies every device of `sensor` into `deck` under `prefix`, wiring
/// its clock ports to `phi1_tap`/`phi2_tap` and its supply to `vdd`.
///
/// Internal nodes and device names are prefixed (`"{prefix}_y1"`,
/// `"{prefix}_m_a"`, …); ground stays ground. Sensors built with
/// [`line_resistance`](clocksense_core::SensorBuilder::line_resistance)
/// keep their balanced lines: the *external* ports (`phi1_in`/`phi2_in`)
/// are wired to the taps and the lines become part of the instance.
///
/// # Errors
///
/// Returns [`ScenarioError::Netlist`] if a prefixed name collides with
/// an existing deck device (graft each prefix once).
pub fn attach_sensor(
    deck: &mut Circuit,
    sensor: &SensingCircuit,
    prefix: &str,
    phi1_tap: NodeId,
    phi2_tap: NodeId,
    vdd: NodeId,
) -> Result<SensorTap, ScenarioError> {
    let src = sensor.circuit();
    let has_lines = src.find_node("phi1_in").is_some();
    let (p1_port, p2_port) = if has_lines {
        ("phi1_in", "phi2_in")
    } else {
        ("phi1", "phi2")
    };

    let map = |deck: &mut Circuit, id: NodeId| -> NodeId {
        if id == GROUND {
            return GROUND;
        }
        let name = src.node_name(id);
        if name == p1_port {
            phi1_tap
        } else if name == p2_port {
            phi2_tap
        } else if name == "vdd" {
            vdd
        } else {
            deck.node(&format!("{prefix}_{name}"))
        }
    };

    for (_, entry) in src.devices() {
        let name = format!("{prefix}_{}", entry.name);
        match &entry.device {
            Device::Resistor(r) => {
                let (a, b) = (map(deck, r.a), map(deck, r.b));
                deck.add_resistor(&name, a, b, r.ohms)?;
            }
            Device::Capacitor(c) => {
                let (a, b) = (map(deck, c.a), map(deck, c.b));
                deck.add_capacitor(&name, a, b, c.farads)?;
            }
            Device::VoltageSource(v) => {
                let (plus, minus) = (map(deck, v.plus), map(deck, v.minus));
                deck.add_vsource(&name, plus, minus, v.wave.clone())?;
            }
            Device::CurrentSource(i) => {
                let (from, to) = (map(deck, i.from), map(deck, i.to));
                deck.add_isource(&name, from, to, i.wave.clone())?;
            }
            Device::Mosfet(m) => {
                let (d, g, s) = (map(deck, m.drain), map(deck, m.gate), map(deck, m.source));
                deck.add_mosfet(&name, m.polarity, d, g, s, m.params)?;
            }
        }
    }

    Ok(SensorTap {
        prefix: prefix.to_string(),
        y1: format!("{prefix}_y1"),
        y2: format!("{prefix}_y2"),
        phi1: deck.node_name(phi1_tap).to_string(),
        phi2: deck.node_name(phi2_tap).to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksense_core::{SensorBuilder, Technology};
    use clocksense_netlist::SourceWave;

    fn host() -> (Circuit, NodeId, NodeId, NodeId) {
        let mut deck = Circuit::new();
        let a = deck.node("wire_a");
        let b = deck.node("wire_b");
        let vdd = deck.node("vdd");
        deck.add_vsource("vdd_supply", vdd, GROUND, SourceWave::Dc(5.0))
            .unwrap();
        // Resistive returns so the taps have a DC path (validate()
        // rejects capacitor-only nodes as floating).
        deck.add_resistor("ra", a, GROUND, 1e3).unwrap();
        deck.add_resistor("rb", b, GROUND, 1e3).unwrap();
        (deck, a, b, vdd)
    }

    #[test]
    fn graft_prefixes_devices_and_reuses_taps() {
        let sensor = SensorBuilder::new(Technology::cmos12())
            .load_capacitance(80e-15)
            .build()
            .unwrap();
        let (mut deck, a, b, vdd) = host();
        let before = deck.device_count();
        let tap = attach_sensor(&mut deck, &sensor, "s0", a, b, vdd).unwrap();
        assert_eq!(
            deck.device_count(),
            before + sensor.circuit().device_count()
        );
        assert!(deck.find_device("s0_m_a").is_some());
        assert!(deck.find_node("s0_y1").is_some());
        assert_eq!(tap.y1, "s0_y1");
        assert_eq!(tap.phi1, "wire_a");
        // The clock ports did not become new nodes.
        assert!(deck.find_node("s0_phi1").is_none());
        deck.validate().unwrap();
        assert!(crate::connected_to_ground(&deck));
    }

    #[test]
    fn two_grafts_coexist_one_duplicate_fails() {
        let sensor = SensorBuilder::new(Technology::cmos12()).build().unwrap();
        let (mut deck, a, b, vdd) = host();
        attach_sensor(&mut deck, &sensor, "s0", a, b, vdd).unwrap();
        attach_sensor(&mut deck, &sensor, "s1", b, a, vdd).unwrap();
        assert!(attach_sensor(&mut deck, &sensor, "s0", a, b, vdd).is_err());
    }

    #[test]
    fn line_resistance_ports_route_through_the_lines() {
        let sensor = SensorBuilder::new(Technology::cmos12())
            .line_resistance(120.0)
            .build()
            .unwrap();
        let (mut deck, a, b, vdd) = host();
        attach_sensor(&mut deck, &sensor, "s0", a, b, vdd).unwrap();
        // The balanced line resistors came along, and the internal
        // phi1 node (behind the line) is a fresh prefixed node.
        assert!(deck.find_device("s0_rline1").is_some());
        assert!(deck.find_node("s0_phi1").is_some());
        deck.validate().unwrap();
    }
}
