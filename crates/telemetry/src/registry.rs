//! The [`Registry`] of named metrics and the [`Scope`] naming helper.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, CounterCell, Histogram, HistogramCell, Switch, Timer, TimerCell};
use crate::report::Report;

#[derive(Debug)]
pub(crate) enum Metric {
    Counter(Arc<CounterCell>),
    Timer(Arc<TimerCell>),
    Histogram(Arc<HistogramCell>),
}

#[derive(Debug)]
struct RegistryInner {
    switch: Arc<Switch>,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// A collection of named metrics sharing one recording switch.
///
/// Cloning a registry clones the *reference*: all clones see the same
/// metrics. The registry hands out metric handles by name
/// (get-or-create); handles stay valid for the life of the registry and
/// record through relaxed atomics.
///
/// Three construction modes:
///
/// * [`Registry::new`] — recording from the start;
/// * [`Registry::paused`] — real metrics, recording off until
///   [`enable`](Registry::enable) (how [`global`](crate::global)
///   starts);
/// * [`Registry::disabled`] — permanent no-op handles, nothing is ever
///   allocated or recorded.
///
/// # Examples
///
/// ```
/// use clocksense_telemetry::Registry;
///
/// let registry = Registry::new();
/// registry.scope("tran").counter("steps").add(3);
/// assert_eq!(registry.snapshot().counter("tran.steps"), Some(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// A registry that records immediately.
    pub fn new() -> Registry {
        let registry = Registry::paused();
        registry.enable();
        registry
    }

    /// A registry whose metrics exist but do not record until
    /// [`enable`](Registry::enable).
    pub fn paused() -> Registry {
        Registry {
            inner: Some(Arc::new(RegistryInner {
                switch: Arc::new(Switch::default()),
                metrics: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// A registry whose handles are permanent no-ops.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// Turns recording on.
    pub fn enable(&self) {
        if let Some(inner) = &self.inner {
            inner.switch.set(true);
        }
    }

    /// Turns recording off (values are kept, not reset).
    pub fn disable(&self) {
        if let Some(inner) = &self.inner {
            inner.switch.set(false);
        }
    }

    /// Whether records are currently accepted.
    pub fn is_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.switch.is_on())
    }

    /// Zeroes every metric, keeping registrations and the switch state.
    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            for metric in inner.metrics.lock().expect("registry poisoned").values() {
                match metric {
                    Metric::Counter(c) => c.reset(),
                    Metric::Timer(t) => t.reset(),
                    Metric::Histogram(h) => h.reset(),
                }
            }
        }
    }

    /// Gets or creates the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// kind.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::noop();
        };
        let mut metrics = inner.metrics.lock().expect("registry poisoned");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(CounterCell::new(inner.switch.clone())));
        match metric {
            Metric::Counter(cell) => Counter {
                cell: Some(cell.clone()),
            },
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// Gets or creates the timer `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// kind.
    pub fn timer(&self, name: &str) -> Timer {
        let Some(inner) = &self.inner else {
            return Timer::noop();
        };
        let mut metrics = inner.metrics.lock().expect("registry poisoned");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Timer(TimerCell::new(inner.switch.clone())));
        match metric {
            Metric::Timer(cell) => Timer {
                cell: Some(cell.clone()),
            },
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// Gets or creates the histogram `name` with the given inclusive
    /// upper bucket bounds (an overflow bucket is implicit).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// kind, or if `bounds` is not strictly increasing.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::noop();
        };
        let mut metrics = inner.metrics.lock().expect("registry poisoned");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(HistogramCell::new(inner.switch.clone(), bounds)));
        match metric {
            Metric::Histogram(cell) => Histogram {
                cell: Some(cell.clone()),
            },
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// A naming scope: metrics created through it get `prefix.`-
    /// qualified names.
    ///
    /// # Examples
    ///
    /// ```
    /// let registry = clocksense_telemetry::Registry::new();
    /// let spice = registry.scope("spice");
    /// spice.counter("solves").incr();
    /// assert_eq!(registry.snapshot().counter("spice.solves"), Some(1));
    /// ```
    pub fn scope(&self, prefix: &str) -> Scope {
        Scope {
            registry: self.clone(),
            prefix: prefix.to_string(),
        }
    }

    /// Freezes the current metric values into a [`Report`].
    pub fn snapshot(&self) -> Report {
        let mut report = Report::new();
        if let Some(inner) = &self.inner {
            for (name, metric) in inner.metrics.lock().expect("registry poisoned").iter() {
                report.absorb(name, metric);
            }
        }
        report
    }
}

/// A name prefix over a [`Registry`].
///
/// Scopes nest: `registry.scope("faults").scope("worker")` produces
/// `faults.worker.*` metric names. Cloning is cheap.
///
/// # Examples
///
/// ```
/// let registry = clocksense_telemetry::Registry::new();
/// let worker = registry.scope("faults").scope("worker");
/// worker.counter("chunks").incr();
/// assert_eq!(registry.snapshot().counter("faults.worker.chunks"), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Scope {
    registry: Registry,
    prefix: String,
}

impl Scope {
    fn qualify(&self, name: &str) -> String {
        format!("{}.{name}", self.prefix)
    }

    /// Gets or creates the counter `prefix.name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(&self.qualify(name))
    }

    /// Gets or creates the timer `prefix.name`.
    pub fn timer(&self, name: &str) -> Timer {
        self.registry.timer(&self.qualify(name))
    }

    /// Gets or creates the histogram `prefix.name`.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.registry.histogram(&self.qualify(name), bounds)
    }

    /// A nested scope `prefix.sub`.
    pub fn scope(&self, sub: &str) -> Scope {
        Scope {
            registry: self.registry.clone(),
            prefix: self.qualify(sub),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_metrics() {
        let a = Registry::new();
        let b = a.clone();
        a.counter("shared").add(1);
        b.counter("shared").add(2);
        assert_eq!(a.snapshot().counter("shared"), Some(3));
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let registry = Registry::new();
        let c = registry.counter("c");
        let t = registry.timer("t");
        let h = registry.histogram("h", &[1]);
        c.add(5);
        t.record(std::time::Duration::from_nanos(5));
        h.record(9);
        registry.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(t.count(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        c.incr();
        assert_eq!(registry.snapshot().counter("c"), Some(1));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        let _ = registry.counter("x");
        let _ = registry.timer("x");
    }

    #[test]
    fn disabled_registry_is_inert() {
        let registry = Registry::disabled();
        assert!(!registry.is_enabled());
        registry.enable();
        assert!(!registry.is_enabled());
        registry.counter("x").add(5);
        registry.reset();
        assert!(registry.snapshot().is_empty());
    }

    #[test]
    fn scopes_nest() {
        let registry = Registry::new();
        registry.scope("a").scope("b").counter("c").incr();
        assert_eq!(registry.snapshot().counter("a.b.c"), Some(1));
    }
}
