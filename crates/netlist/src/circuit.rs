//! The [`Circuit`] container: nodes, named devices, validation.

use std::collections::HashMap;
use std::fmt;

use crate::device::{Capacitor, CurrentSource, Device, Resistor, VoltageSource};
use crate::error::NetlistError;
use crate::mos::{MosParams, MosPolarity, Mosfet};
use crate::node::{NodeId, GROUND};
use crate::waveform::SourceWave;

/// Identifier of a device within a [`Circuit`].
///
/// Device ids are stable: removing a device leaves a tombstone, so ids held
/// by fault dictionaries remain valid for the surviving devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub(crate) u32);

impl DeviceId {
    /// Returns the dense slot index of this device.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A live device slot: its user-visible name and payload.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceEntry {
    /// User-assigned unique name (e.g. `"m_c"`, `"vdd"`).
    pub name: String,
    /// The device itself.
    pub device: Device,
}

/// Device counts of a circuit, produced by [`Circuit::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// Node count including ground.
    pub nodes: usize,
    /// Resistor count.
    pub resistors: usize,
    /// Capacitor count.
    pub capacitors: usize,
    /// Voltage-source count.
    pub vsources: usize,
    /// Current-source count.
    pub isources: usize,
    /// n-channel MOSFET count.
    pub nmos: usize,
    /// p-channel MOSFET count.
    pub pmos: usize,
}

impl CircuitStats {
    /// Total live device count.
    pub fn total(&self) -> usize {
        self.resistors + self.capacitors + self.vsources + self.isources + self.nmos + self.pmos
    }

    /// Total transistor count.
    pub fn transistors(&self) -> usize {
        self.nmos + self.pmos
    }
}

/// A flat electrical circuit: a set of named nodes and named devices.
///
/// Nodes are created on demand by [`Circuit::node`]; node `0` is always the
/// ground reference. Devices are added through the typed `add_*` methods,
/// which validate values eagerly ([C-VALIDATE]) and return stable
/// [`DeviceId`]s.
///
/// # Examples
///
/// ```
/// use clocksense_netlist::{Circuit, SourceWave, GROUND};
///
/// # fn main() -> Result<(), clocksense_netlist::NetlistError> {
/// let mut ckt = Circuit::new();
/// let vdd = ckt.node("vdd");
/// ckt.add_vsource("vsupply", vdd, GROUND, SourceWave::Dc(5.0))?;
/// ckt.add_resistor("rload", vdd, GROUND, 10_000.0)?;
/// assert_eq!(ckt.device_count(), 2);
/// ckt.validate()?;
/// # Ok(())
/// # }
/// ```
///
/// [C-VALIDATE]: https://rust-lang.github.io/api-guidelines/dependability.html
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    name_to_node: HashMap<String, NodeId>,
    slots: Vec<Option<DeviceEntry>>,
    name_to_device: HashMap<String, DeviceId>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node (`"0"`).
    pub fn new() -> Self {
        let mut ckt = Circuit {
            node_names: Vec::new(),
            name_to_node: HashMap::new(),
            slots: Vec::new(),
            name_to_device: HashMap::new(),
        };
        ckt.node_names.push("0".to_string());
        ckt.name_to_node.insert("0".to_string(), GROUND);
        ckt
    }

    /// Returns the node with the given name, creating it if necessary.
    ///
    /// The names `"0"`, `"gnd"` and `"GND"` all alias the ground node.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return GROUND;
        }
        if let Some(&id) = self.name_to_node.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(name.to_string());
        self.name_to_node.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(GROUND);
        }
        self.name_to_node.get(name).copied()
    }

    /// Returns the name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated by this circuit.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.index()]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of live (non-removed) devices.
    pub fn device_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    fn insert(&mut self, name: &str, device: Device) -> Result<DeviceId, NetlistError> {
        if self.name_to_device.contains_key(name) {
            return Err(NetlistError::DuplicateDevice(name.to_string()));
        }
        for node in device.nodes() {
            if node.index() >= self.node_names.len() {
                return Err(NetlistError::UnknownNode(node.to_string()));
            }
        }
        let id = DeviceId(self.slots.len() as u32);
        self.slots.push(Some(DeviceEntry {
            name: name.to_string(),
            device,
        }));
        self.name_to_device.insert(name.to_string(), id);
        Ok(id)
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidValue`] unless `ohms` is finite and
    /// positive, and [`NetlistError::DuplicateDevice`] if `name` is taken.
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<DeviceId, NetlistError> {
        if !(ohms.is_finite() && ohms > 0.0) {
            return Err(NetlistError::InvalidValue {
                device: name.to_string(),
                detail: format!("resistance must be finite and positive, got {ohms}"),
            });
        }
        self.insert(name, Device::Resistor(Resistor { a, b, ohms }))
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidValue`] unless `farads` is finite and
    /// positive, and [`NetlistError::DuplicateDevice`] if `name` is taken.
    pub fn add_capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<DeviceId, NetlistError> {
        if !(farads.is_finite() && farads > 0.0) {
            return Err(NetlistError::InvalidValue {
                device: name.to_string(),
                detail: format!("capacitance must be finite and positive, got {farads}"),
            });
        }
        self.insert(name, Device::Capacitor(Capacitor { a, b, farads }))
    }

    /// Adds an independent voltage source forcing `V(plus) - V(minus)`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MalformedWave`] if the waveform fails its
    /// well-formedness check, and [`NetlistError::DuplicateDevice`] if
    /// `name` is taken.
    pub fn add_vsource(
        &mut self,
        name: &str,
        plus: NodeId,
        minus: NodeId,
        wave: SourceWave,
    ) -> Result<DeviceId, NetlistError> {
        if !wave.is_well_formed() {
            return Err(NetlistError::MalformedWave(name.to_string()));
        }
        self.insert(
            name,
            Device::VoltageSource(VoltageSource { plus, minus, wave }),
        )
    }

    /// Adds an independent current source pushing current `from` → `to`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MalformedWave`] if the waveform fails its
    /// well-formedness check, and [`NetlistError::DuplicateDevice`] if
    /// `name` is taken.
    pub fn add_isource(
        &mut self,
        name: &str,
        from: NodeId,
        to: NodeId,
        wave: SourceWave,
    ) -> Result<DeviceId, NetlistError> {
        if !wave.is_well_formed() {
            return Err(NetlistError::MalformedWave(name.to_string()));
        }
        self.insert(
            name,
            Device::CurrentSource(CurrentSource { from, to, wave }),
        )
    }

    /// Adds a Level-1 MOSFET.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidValue`] if the parameters fail
    /// [`MosParams::is_well_formed`], and [`NetlistError::DuplicateDevice`]
    /// if `name` is taken.
    pub fn add_mosfet(
        &mut self,
        name: &str,
        polarity: MosPolarity,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        params: MosParams,
    ) -> Result<DeviceId, NetlistError> {
        if !params.is_well_formed() {
            return Err(NetlistError::InvalidValue {
                device: name.to_string(),
                detail: "mos parameters out of physical domain".to_string(),
            });
        }
        self.insert(
            name,
            Device::Mosfet(Mosfet {
                polarity,
                drain,
                gate,
                source,
                params,
            }),
        )
    }

    /// Returns the device entry for `id`, or `None` if it was removed or
    /// never existed.
    pub fn device(&self, id: DeviceId) -> Option<&DeviceEntry> {
        self.slots.get(id.index()).and_then(|s| s.as_ref())
    }

    /// Mutable access to the device entry for `id`.
    pub fn device_mut(&mut self, id: DeviceId) -> Option<&mut DeviceEntry> {
        self.slots.get_mut(id.index()).and_then(|s| s.as_mut())
    }

    /// Looks up a device id by name.
    pub fn find_device(&self, name: &str) -> Option<DeviceId> {
        self.name_to_device.get(name).copied().filter(|id| {
            self.slots
                .get(id.index())
                .map(|s| s.is_some())
                .unwrap_or(false)
        })
    }

    /// Removes a device, returning its entry.
    ///
    /// The id becomes a tombstone; other device ids are unaffected. Used by
    /// fault injection to model transistor stuck-open faults.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownDevice`] if `id` is not a live device.
    pub fn remove_device(&mut self, id: DeviceId) -> Result<DeviceEntry, NetlistError> {
        let slot = self
            .slots
            .get_mut(id.index())
            .ok_or_else(|| NetlistError::UnknownDevice(id.to_string()))?;
        let entry = slot
            .take()
            .ok_or_else(|| NetlistError::UnknownDevice(id.to_string()))?;
        self.name_to_device.remove(&entry.name);
        Ok(entry)
    }

    /// Iterates over live devices as `(id, entry)` pairs.
    pub fn devices(&self) -> impl Iterator<Item = (DeviceId, &DeviceEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (DeviceId(i as u32), e)))
    }

    /// Iterates over node ids (including ground).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_names.len()).map(|i| NodeId(i as u32))
    }

    /// Summarises the circuit: device counts per kind.
    ///
    /// # Examples
    ///
    /// ```
    /// use clocksense_netlist::{Circuit, SourceWave, GROUND};
    ///
    /// # fn main() -> Result<(), clocksense_netlist::NetlistError> {
    /// let mut ckt = Circuit::new();
    /// let a = ckt.node("a");
    /// ckt.add_vsource("v", a, GROUND, SourceWave::Dc(1.0))?;
    /// ckt.add_resistor("r", a, GROUND, 50.0)?;
    /// let stats = ckt.stats();
    /// assert_eq!(stats.resistors, 1);
    /// assert_eq!(stats.vsources, 1);
    /// assert_eq!(stats.total(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn stats(&self) -> CircuitStats {
        let mut stats = CircuitStats {
            nodes: self.node_count(),
            ..CircuitStats::default()
        };
        for (_, entry) in self.devices() {
            match &entry.device {
                Device::Resistor(_) => stats.resistors += 1,
                Device::Capacitor(_) => stats.capacitors += 1,
                Device::VoltageSource(_) => stats.vsources += 1,
                Device::CurrentSource(_) => stats.isources += 1,
                Device::Mosfet(m) => match m.polarity {
                    crate::mos::MosPolarity::Nmos => stats.nmos += 1,
                    crate::mos::MosPolarity::Pmos => stats.pmos += 1,
                },
            }
        }
        stats
    }

    /// Checks structural soundness: every non-ground node must be reachable
    /// from ground through resistors, voltage sources or MOSFET channels
    /// (capacitor-only and current-source-only nodes have no DC path and
    /// would make the DC operating point singular).
    ///
    /// MOSFET gates do not conduct, so a gate connection alone does not
    /// ground a node.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::FloatingNode`] naming the first offending
    /// node.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let n = self.node_names.len();
        // Union-find over DC-conductive device terminals.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        let union = |parent: &mut [usize], a: usize, b: usize| {
            let ra = find(parent, a);
            let rb = find(parent, b);
            if ra != rb {
                parent[ra] = rb;
            }
        };
        let mut touched = vec![false; n];
        touched[GROUND.index()] = true;
        for (_, entry) in self.devices() {
            for node in entry.device.nodes() {
                touched[node.index()] = true;
            }
            match &entry.device {
                Device::Resistor(r) => union(&mut parent, r.a.index(), r.b.index()),
                Device::VoltageSource(v) => union(&mut parent, v.plus.index(), v.minus.index()),
                Device::Mosfet(m) => union(&mut parent, m.drain.index(), m.source.index()),
                Device::Capacitor(_) | Device::CurrentSource(_) => {}
            }
        }
        let ground_root = find(&mut parent, GROUND.index());
        for (i, &is_touched) in touched.iter().enumerate().take(n).skip(1) {
            if !is_touched {
                return Err(NetlistError::FloatingNode(self.node_names[i].clone()));
            }
            if find(&mut parent, i) != ground_root {
                return Err(NetlistError::FloatingNode(self.node_names[i].clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mos_params() -> MosParams {
        MosParams {
            vth0: 0.7,
            kp: 60e-6,
            lambda: 0.02,
            w: 4e-6,
            l: 1.2e-6,
            cgs: 0.0,
            cgd: 0.0,
            cdb: 0.0,
        }
    }

    #[test]
    fn ground_aliases() {
        let mut ckt = Circuit::new();
        assert_eq!(ckt.node("0"), GROUND);
        assert_eq!(ckt.node("gnd"), GROUND);
        assert_eq!(ckt.node("GND"), GROUND);
        assert_eq!(ckt.find_node("Gnd"), Some(GROUND));
        assert_eq!(ckt.node_count(), 1);
    }

    #[test]
    fn node_creation_is_idempotent() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        assert_ne!(a, b);
        assert_eq!(ckt.node("a"), a);
        assert_eq!(ckt.node_count(), 3);
        assert_eq!(ckt.node_name(a), "a");
        assert_eq!(ckt.find_node("zzz"), None);
    }

    #[test]
    fn duplicate_device_name_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_resistor("r1", a, GROUND, 100.0).unwrap();
        let err = ckt.add_resistor("r1", a, GROUND, 200.0).unwrap_err();
        assert_eq!(err, NetlistError::DuplicateDevice("r1".into()));
    }

    #[test]
    fn invalid_values_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert!(ckt.add_resistor("r", a, GROUND, 0.0).is_err());
        assert!(ckt.add_resistor("r", a, GROUND, -5.0).is_err());
        assert!(ckt.add_resistor("r", a, GROUND, f64::NAN).is_err());
        assert!(ckt.add_capacitor("c", a, GROUND, 0.0).is_err());
        assert!(ckt
            .add_vsource("v", a, GROUND, SourceWave::Dc(f64::NAN))
            .is_err());
        let mut bad = mos_params();
        bad.l = -1.0;
        assert!(ckt
            .add_mosfet("m", MosPolarity::Nmos, a, a, GROUND, bad)
            .is_err());
        assert_eq!(ckt.device_count(), 0);
    }

    #[test]
    fn remove_leaves_other_ids_stable() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let r1 = ckt.add_resistor("r1", a, GROUND, 100.0).unwrap();
        let r2 = ckt.add_resistor("r2", a, GROUND, 200.0).unwrap();
        let removed = ckt.remove_device(r1).unwrap();
        assert_eq!(removed.name, "r1");
        assert!(ckt.device(r1).is_none());
        assert_eq!(ckt.device(r2).unwrap().name, "r2");
        assert_eq!(ckt.device_count(), 1);
        assert_eq!(ckt.find_device("r1"), None);
        assert!(ckt.remove_device(r1).is_err());
        // Name can be reused after removal.
        ckt.add_resistor("r1", a, GROUND, 50.0).unwrap();
        assert!(ckt.find_device("r1").is_some());
    }

    #[test]
    fn validate_accepts_connected_circuit() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        ckt.add_vsource("v1", vdd, GROUND, SourceWave::Dc(5.0))
            .unwrap();
        ckt.add_mosfet("m1", MosPolarity::Pmos, out, GROUND, vdd, mos_params())
            .unwrap();
        ckt.add_capacitor("cl", out, GROUND, 1e-13).unwrap();
        ckt.validate().unwrap();
    }

    #[test]
    fn validate_rejects_floating_node() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_resistor("r1", a, GROUND, 100.0).unwrap();
        // b is only reachable through a capacitor: no DC path.
        ckt.add_capacitor("c1", b, a, 1e-12).unwrap();
        let err = ckt.validate().unwrap_err();
        assert_eq!(err, NetlistError::FloatingNode("b".into()));
    }

    #[test]
    fn validate_rejects_untouched_node() {
        let mut ckt = Circuit::new();
        ckt.node("orphan");
        let err = ckt.validate().unwrap_err();
        assert_eq!(err, NetlistError::FloatingNode("orphan".into()));
    }

    #[test]
    fn gate_only_connection_does_not_ground() {
        let mut ckt = Circuit::new();
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.add_mosfet("m1", MosPolarity::Nmos, d, g, GROUND, mos_params())
            .unwrap();
        ckt.add_resistor("rd", d, GROUND, 1e3).unwrap();
        let err = ckt.validate().unwrap_err();
        assert_eq!(err, NetlistError::FloatingNode("g".into()));
    }

    #[test]
    fn stats_count_by_kind() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("v", a, GROUND, SourceWave::Dc(5.0))
            .unwrap();
        ckt.add_resistor("r", a, b, 10.0).unwrap();
        ckt.add_capacitor("c", b, GROUND, 1e-12).unwrap();
        ckt.add_mosfet("mn", MosPolarity::Nmos, b, a, GROUND, mos_params())
            .unwrap();
        ckt.add_mosfet("mp", MosPolarity::Pmos, b, a, GROUND, mos_params())
            .unwrap();
        let s = ckt.stats();
        assert_eq!(s.nodes, 3);
        assert_eq!((s.resistors, s.capacitors, s.vsources), (1, 1, 1));
        assert_eq!((s.nmos, s.pmos), (1, 1));
        assert_eq!(s.total(), 5);
        assert_eq!(s.transistors(), 2);
    }

    #[test]
    fn devices_iterator_skips_tombstones() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let r1 = ckt.add_resistor("r1", a, GROUND, 1.0).unwrap();
        ckt.add_resistor("r2", a, GROUND, 2.0).unwrap();
        ckt.remove_device(r1).unwrap();
        let names: Vec<_> = ckt.devices().map(|(_, e)| e.name.as_str()).collect();
        assert_eq!(names, vec!["r2"]);
    }
}
